//! The experiment registry: every table and figure of the paper, with an
//! executable regenerator.

pub mod ablation;
pub mod amdahl_exp;
pub mod analytic;
pub mod bigtrace;
pub mod devices;
pub mod extension;
pub mod figures;
pub mod hierarchy_exp;
pub mod laws;
pub mod onepass;
pub mod parallel_exp;
pub mod parallel_measured;
pub mod pebble_exp;
pub mod resume;
pub mod roofline_exp;
pub mod store_exp;

use crate::report::Report;

/// The problem-size tier an experiment runs at.
///
/// `Small` is the CI/default regime (seconds per experiment). `Large`
/// (`repro --scale large`) pushes the scale-sensitive experiments to the
/// sizes the measurement engine was rebuilt for — E13 at `n = 512`, whose
/// naive trace is 402M addresses, streamed in O(1) memory through the
/// direct-indexed LRU, and E23 at `n = 700`, whose 1.03G-address trace
/// runs through the segmented parallel and hash-sampled stack-distance
/// engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Toy sizes: every experiment finishes in seconds.
    #[default]
    Small,
    /// Thousands-scale problem sizes for the scale-sensitive experiments.
    Large,
}

impl Scale {
    /// Parses a `--scale` value.
    ///
    /// # Errors
    ///
    /// A user-facing message for unknown tiers.
    pub fn parse(s: &str) -> Result<Scale, String> {
        match s.to_ascii_lowercase().as_str() {
            "small" => Ok(Scale::Small),
            "large" => Ok(Scale::Large),
            other => Err(format!("unknown scale '{other}' (try: small, large)")),
        }
    }
}

/// All experiment ids in presentation order.
pub const ALL_IDS: [&str; 27] = [
    "F1", "F2", "F3", "F4", "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11",
    "E12", "E13", "E14", "E15", "E20", "E21", "E22", "E23", "E24", "E25", "E26", "E27",
];

/// Runs one experiment by id (case-insensitive) at the default scale.
/// Returns `None` for unknown ids.
#[must_use]
pub fn run_by_id(id: &str) -> Option<Report> {
    run_by_id_at(id, Scale::Small)
}

/// Runs one experiment by id at an explicit [`Scale`] tier. Experiments
/// without a large-scale variant run identically at either tier.
#[must_use]
pub fn run_by_id_at(id: &str, scale: Scale) -> Option<Report> {
    Some(match id.to_ascii_uppercase().as_str() {
        "F1" => figures::fig1_pe(),
        "F2" => figures::fig2_fft_decomposition(),
        "F3" => figures::fig3_linear(),
        "F4" => figures::fig4_mesh(),
        "E1" => laws::e1_summary_table(),
        "E2" => laws::e2_matmul(),
        "E3" => laws::e3_triangularization(),
        "E4" => laws::e4_grid(),
        "E5" => laws::e5_fft(),
        "E6" => laws::e6_sorting(),
        "E7" => laws::e7_io_bounded(),
        "E8" => parallel_exp::e8_linear_array(),
        "E9" => parallel_exp::e9_mesh(),
        "E10" => parallel_exp::e10_warp(),
        "E11" => pebble_exp::e11_pebble(),
        "E12" => roofline_exp::e12_roofline(),
        "E13" => ablation::e13_lru_ablation_at(scale),
        "E14" => extension::e14_extension_kernels(),
        "E15" => amdahl_exp::e15_amdahl(),
        // "hierarchy"/"parallel"/"onepass" are the mnemonic aliases the CI
        // smoke steps use.
        "E20" | "HIERARCHY" => hierarchy_exp::e20_hierarchy(),
        "E21" | "PARALLEL" => parallel_measured::e21_parallel(),
        "E22" | "ONEPASS" => onepass::e22_onepass(),
        "E23" | "BIGTRACE" => bigtrace::e23_bigtrace_at(scale),
        "E24" | "RESUME" => resume::e24_resume(),
        "E25" | "ANALYTIC" => analytic::e25_analytic(),
        "E26" | "DEVICES" => devices::e26_devices(),
        "E27" | "STORE" => store_exp::e27_store(),
        _ => return None,
    })
}

/// Runs every experiment, in order, at the default scale.
#[must_use]
pub fn run_all() -> Vec<Report> {
    ALL_IDS
        .iter()
        .map(|id| run_by_id(id).unwrap_or_else(|| panic!("registry covers ALL_IDS")))
        .collect()
}

#[cfg(test)]
mod scale_tests {
    use super::*;

    #[test]
    fn scale_parses_case_insensitively() {
        assert_eq!(Scale::parse("small").unwrap(), Scale::Small);
        assert_eq!(Scale::parse("LARGE").unwrap(), Scale::Large);
        assert!(Scale::parse("huge").is_err());
    }

    #[test]
    fn scale_only_changes_scale_sensitive_experiments() {
        // F1 has no large tier: both scales must agree.
        let a = run_by_id_at("F1", Scale::Small).unwrap();
        let b = run_by_id_at("F1", Scale::Large).unwrap();
        assert_eq!(a.body, b.body);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_ids_are_none() {
        assert!(run_by_id("E99").is_none());
        assert!(run_by_id("").is_none());
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(run_by_id("f1").is_some());
        assert!(run_by_id("e13").is_some());
    }

    #[test]
    fn quick_experiments_pass() {
        // The fast subset (figures + closed-form experiments); the heavy
        // measured experiments run in the integration suite and in `repro`.
        for id in ["F1", "F2", "F3", "F4", "E8", "E9", "E10", "E12", "E15"] {
            let report = run_by_id(id).unwrap();
            assert!(report.passed(), "{id} failed:\n{report}");
        }
    }
}
