//! Experiment E26 (devices): the device-realistic traffic model.
//!
//! Kung prices one undifferentiated word stream; real memory devices move
//! whole lines (cache lines, flash pages, disk blocks) and charge dirty
//! evictions a second time on the write channel. This experiment drives
//! the tagged read/write traces through the line-granular dirty-LRU model
//! and its one-pass stack-distance twin:
//!
//! * **engine bit-identity** — the 12-point line-granular matmul sweep
//!   (8-word lines, write-backs ledgered) is identical from the tagged
//!   one-pass engine and the per-capacity dirty-LRU replay;
//! * **safety net** — at 1-word lines the device read stream reproduces
//!   the word-granular `IO(M)` curve bit for bit, so the paper's numbers
//!   are the `line_words = 1` corner of the device model;
//! * **the line win** — blocked matmul beats naive by *more* at 8-word
//!   lines than word-granular analysis predicts: tiles make every fetched
//!   line fully used (stride-1 within a tile), while naive's stride-`n`
//!   walk through `B` wastes 7 of every 8 words fetched;
//! * **out-of-core sort on a disk-class level** — external sort under a
//!   block device (64-word lines, slower write-back channel) ledgers both
//!   streams at the disk boundary: merged runs are written back, not just
//!   read, and every transfer is a whole block.

use balance_core::{LevelSpec, Words, WordsPerSec};
use balance_kernels::matmul::{BlockedTrace, MatMul, NaiveTrace};
use balance_kernels::sorting::ExternalSort;
use balance_kernels::sweep::{
    capacity_sweep, hierarchy_capacity_sweep, Engine, SweepConfig, TrafficModel,
};
use balance_kernels::Verify;
use balance_machine::StackDistance;

use crate::report::{Finding, Report};

/// The device line size the matmul sweep and the line-win study use.
const LINE: u64 = 8;

/// A capacity sweep config at the given traffic model.
fn cfg(n: usize, memories: Vec<usize>, engine: Engine, model: TrafficModel) -> SweepConfig {
    SweepConfig {
        n,
        memories,
        seed: 0,
        verify: Verify::None,
        engine,
        ..SweepConfig::default()
    }
    .with_traffic(model)
}

/// Read words moved at capacity `m` for a matmul trace variant at a line
/// size — the line-win study's one measurement.
fn read_words_at(naive: bool, n: usize, b: usize, line: u64, m: u64) -> u64 {
    let bound = 3 * (n as u64) * (n as u64);
    let profile = if naive {
        StackDistance::traffic_profile_of_bounded(NaiveTrace::new(n), line, bound)
    } else {
        StackDistance::traffic_profile_of_bounded(BlockedTrace::new(n, b), line, bound)
    };
    profile.read_words_at(m)
}

/// The line-win ratio at one capacity: how much more blocked matmul beats
/// naive at `LINE`-word lines than at 1-word lines (> 1 means lines
/// reward blocking beyond the word-granular prediction).
#[must_use]
pub fn blocked_vs_naive_line_win(n: usize, b: usize, m: u64) -> f64 {
    let ratio_at = |line: u64| {
        read_words_at(true, n, b, line, m) as f64 / read_words_at(false, n, b, line, m) as f64
    };
    ratio_at(LINE) / ratio_at(1)
}

/// E26 — tagged traces, line granularity, and the dirty-write-back ledger.
#[must_use]
pub fn e26_devices() -> Report {
    let mut findings = Vec::new();

    // --- Line-granular matmul sweep: both tagged engines, 8-word lines. ---
    let n = 32usize;
    let memories: Vec<usize> = (3..=14u32).map(|k| 1usize << k).collect(); // 12 points
    let device = TrafficModel::device(LINE);
    let onepass = capacity_sweep(&MatMul, &cfg(n, memories.clone(), Engine::StackDist, device))
        .unwrap_or_else(|e| panic!("traced: {e}"));
    let replay = capacity_sweep(&MatMul, &cfg(n, memories.clone(), Engine::Replay, device))
        .unwrap_or_else(|e| panic!("traced: {e}"));

    let mut body = format!(
        "matmul n = {n}, {LINE}-word lines, dirty write-backs ledgered:\n\
         {:>9} {:>12} {:>12} {:>12} {:>10}\n",
        "M", "reads(M)", "wb(M)", "total", "r(M)"
    );
    for run in &onepass.runs {
        let cost = &run.execution.cost;
        body.push_str(&format!(
            "{:>9} {:>12} {:>12} {:>12} {:>10.3}\n",
            run.m,
            cost.read_at(0).unwrap_or(0),
            cost.writeback_at(0).unwrap_or(0),
            cost.io_words(),
            run.intensity()
        ));
    }

    findings.push(Finding::new(
        "tagged engines bit-identical at 8-word lines",
        "stackdist == dirty-LRU replay",
        format!("{} points", onepass.runs.len()),
        onepass.runs == replay.runs && onepass.runs.len() == 12,
    ));

    let wbs: Vec<u64> = onepass
        .runs
        .iter()
        .map(|r| r.execution.cost.writeback_at(0).unwrap_or(0))
        .collect();
    findings.push(Finding::new(
        "write-back ledger live and monotone",
        "wb(M) > 0, non-increasing in M",
        format!("{} -> {}", wbs.first().unwrap_or(&0), wbs.last().unwrap_or(&0)),
        wbs.iter().all(|&w| w > 0) && wbs.windows(2).all(|w| w[1] <= w[0]),
    ));

    // Whole-line accounting: every ledger entry moves whole lines.
    findings.push(Finding::new(
        "all transfers are whole lines",
        format!("reads, wb both multiples of {LINE}"),
        "every point".to_string(),
        onepass.runs.iter().all(|r| {
            let cost = &r.execution.cost;
            cost.read_at(0).unwrap_or(1) % LINE == 0 && cost.writeback_at(0).unwrap_or(1) % LINE == 0
        }),
    ));

    // --- Safety net: the word-granular curve is the line_words = 1 corner. ---
    let word = capacity_sweep(
        &MatMul,
        &cfg(n, memories.clone(), Engine::StackDist, TrafficModel::WORD),
    )
    .unwrap_or_else(|e| panic!("traced: {e}"));
    let unit = capacity_sweep(
        &MatMul,
        &cfg(n, memories, Engine::StackDist, TrafficModel::device(1)),
    )
    .unwrap_or_else(|e| panic!("traced: {e}"));
    let reads_match = word
        .runs
        .iter()
        .zip(&unit.runs)
        .all(|(w, u)| {
            w.m == u.m && w.execution.cost.io_words() == u.execution.cost.read_at(0).unwrap_or(0)
        });
    findings.push(Finding::new(
        "1-word-line read stream == word-granular IO(M)",
        "bit-identical at every M",
        format!("{} points", word.runs.len()),
        reads_match && !word.runs.is_empty(),
    ));

    // --- The line win: blocked vs naive matmul under 8-word lines. ---
    let (ln, lb, lm) = (48usize, 8usize, 256u64);
    let naive_1 = read_words_at(true, ln, lb, 1, lm);
    let blocked_1 = read_words_at(false, ln, lb, 1, lm);
    let naive_8 = read_words_at(true, ln, lb, LINE, lm);
    let blocked_8 = read_words_at(false, ln, lb, LINE, lm);
    let win = blocked_vs_naive_line_win(ln, lb, lm);
    body.push_str(&format!(
        "\nblocked (b = {lb}) vs naive matmul, n = {ln}, M = {lm} words:\n\
         {:>12} {:>14} {:>14} {:>10}\n\
         {:>12} {:>14} {:>14} {:>10.2}\n\
         {:>12} {:>14} {:>14} {:>10.2}\n\
         line win (ratio of ratios): {win:.2}x\n",
        "line (words)", "naive reads", "blocked reads", "naive/blocked",
        1, naive_1, blocked_1, naive_1 as f64 / blocked_1 as f64,
        LINE, naive_8, blocked_8, naive_8 as f64 / blocked_8 as f64,
    ));
    findings.push(Finding::new(
        "lines reward blocking beyond the word model",
        "line win > 1.5x",
        format!("{win:.2}x"),
        win > 1.5,
    ));
    // Blocked tiles use fetched lines fully (stride-1 within the tile):
    // its 8-word-line read volume stays within 2x of its word-granular
    // one, while naive's stride-n walk through B pays most of the 8x.
    findings.push(Finding::new(
        "blocked tiles amortize whole lines",
        "blocked reads(8w) < 2x reads(1w); naive > 3x",
        format!(
            "blocked {:.2}x, naive {:.2}x",
            blocked_8 as f64 / blocked_1 as f64,
            naive_8 as f64 / naive_1 as f64
        ),
        (blocked_8 as f64) < 2.0 * blocked_1 as f64 && (naive_8 as f64) > 3.0 * naive_1 as f64,
    ));

    // --- Out-of-core sort on a disk-class outer level. ---
    let sort_n = 4096usize;
    let block = 64u64;
    let disk = LevelSpec::new(Words::new(1 << 20), WordsPerSec::new(1.0e6))
        .and_then(|l| l.with_line_words(block))
        .and_then(|l| l.with_write_bandwidth(WordsPerSec::new(2.5e5)))
        .unwrap_or_else(|e| panic!("valid disk level: {e}"));
    let sort_cfg = cfg(
        sort_n,
        vec![64, 256, 1024],
        Engine::Replay,
        TrafficModel::device(block),
    );
    let sorted = hierarchy_capacity_sweep(&ExternalSort, &sort_cfg, &[disk])
        .unwrap_or_else(|e| panic!("traced: {e}"));
    let sorted_onepass = hierarchy_capacity_sweep(
        &ExternalSort,
        &sort_cfg.clone().with_engine(Engine::StackDist),
        &[disk],
    )
    .unwrap_or_else(|e| panic!("traced: {e}"));
    body.push_str(&format!(
        "\nexternal sort n = {sort_n} under a disk-class level \
         ({block}-word blocks, split write channel):\n\
         {:>9} {:>12} {:>10} {:>12} {:>10}\n",
        "M", "disk reads", "disk wb", "port reads", "port wb"
    ));
    for run in &sorted.runs {
        let cost = &run.execution.cost;
        body.push_str(&format!(
            "{:>9} {:>12} {:>10} {:>12} {:>10}\n",
            run.m,
            cost.read_at(1).unwrap_or(0),
            cost.writeback_at(1).unwrap_or(0),
            cost.read_at(0).unwrap_or(0),
            cost.writeback_at(0).unwrap_or(0),
        ));
    }
    findings.push(Finding::new(
        "disk boundary ledgers both streams in whole blocks",
        format!("reads > 0, wb > 0, both % {block} == 0"),
        format!("{} points", sorted.runs.len()),
        !sorted.runs.is_empty()
            && sorted.runs.iter().all(|r| {
                let (rd, wb) = (
                    r.execution.cost.read_at(1).unwrap_or(0),
                    r.execution.cost.writeback_at(1).unwrap_or(0),
                );
                rd > 0 && wb > 0 && rd % block == 0 && wb % block == 0
            }),
    ));
    findings.push(Finding::new(
        "tagged engines agree on the disk ladder",
        "replay == stackdist",
        format!("{} points", sorted.runs.len()),
        sorted.runs == sorted_onepass.runs,
    ));

    Report {
        id: "E26",
        title: "device-realistic traffic: lines, tagged streams, write-back ledger",
        body,
        findings,
    }
}
