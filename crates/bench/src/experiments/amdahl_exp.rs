//! Experiment E15: Kung's laws vs Amdahl's rule of thumb.
//!
//! The paper's introduction: *"It is well known that the size of the local
//! memory must be large if the computation bandwidth of the processing
//! element is large, as represented by 'Amdahl's rule'."* Amdahl's rule is
//! **linear** — about one byte of memory per instruction per second. The
//! paper's point is that for real computations the requirement grows
//! *faster*: quadratically in the bandwidth ratio for matrix work,
//! exponentially for FFT/sorting. This experiment tabulates the gap.

use balance_core::amdahl::excess_over_amdahl;
use balance_core::{GrowthLaw, Words};

use crate::report::{Finding, Report};

/// E15 — how far each computation's memory law outruns Amdahl's linear rule.
#[must_use]
pub fn e15_amdahl() -> Report {
    let m_old = Words::new(4096);
    let laws: [(&str, GrowthLaw); 5] = [
        ("grid1d", GrowthLaw::Polynomial { degree: 1.0 }),
        ("matmul/LU/grid2d", GrowthLaw::Polynomial { degree: 2.0 }),
        ("grid3d", GrowthLaw::Polynomial { degree: 3.0 }),
        ("fft/sort", GrowthLaw::Exponential),
        ("matvec/trisolve", GrowthLaw::Impossible),
    ];

    let mut body = format!(
        "memory growth factor when C/IO rises by α (M_old = {m_old}):\n{:<18} {:>12} {:>14} {:>16}\n",
        "computation", "α=2", "α=4", "excess/Amdahl α=4"
    );
    let mut findings = Vec::new();
    for (name, law) in laws {
        let g2 = law.growth_factor(2.0, m_old);
        let g4 = law.growth_factor(4.0, m_old);
        let ex4 = excess_over_amdahl(law, 4.0, m_old);
        let fmt = |r: &Result<f64, _>| match r {
            Ok(v) if *v < 1.0e9 => format!("×{v:.0}"),
            Ok(v) => format!("×{v:.2e}"),
            Err(_) => "impossible".to_string(),
        };
        body.push_str(&format!(
            "{:<18} {:>12} {:>14} {:>16}\n",
            name,
            fmt(&g2),
            fmt(&g4),
            fmt(&ex4)
        ));
    }

    // Checks: Amdahl (linear) matches only the 1-d grid; everything else
    // outruns it by exactly the documented factor.
    let ex_linear =
        excess_over_amdahl(GrowthLaw::Polynomial { degree: 1.0 }, 4.0, m_old).unwrap_or_else(|e| panic!("possible: {e}"));
    findings.push(Finding::new(
        "1-d grid matches Amdahl's linear rule",
        "excess ×1",
        format!("×{ex_linear:.2}"),
        (ex_linear - 1.0).abs() < 1e-12,
    ));
    let ex_matrix =
        excess_over_amdahl(GrowthLaw::Polynomial { degree: 2.0 }, 4.0, m_old).unwrap_or_else(|e| panic!("possible: {e}"));
    findings.push(Finding::new(
        "matrix law exceeds Amdahl by α",
        "excess ×4 at α=4",
        format!("×{ex_matrix:.2}"),
        (ex_matrix - 4.0).abs() < 1e-12,
    ));
    let ex_fft = excess_over_amdahl(GrowthLaw::Exponential, 2.0, m_old).unwrap_or_else(|e| panic!("possible: {e}"));
    findings.push(Finding::new(
        "FFT law dwarfs Amdahl even at α=2",
        "excess = M_old/α = 2048",
        format!("×{ex_fft:.0}"),
        (ex_fft - 2048.0).abs() < 1.0,
    ));
    findings.push(Finding::new(
        "I/O-bounded laws have no Amdahl comparison",
        "impossible",
        format!(
            "{}",
            excess_over_amdahl(GrowthLaw::Impossible, 2.0, m_old).is_err()
        ),
        excess_over_amdahl(GrowthLaw::Impossible, 2.0, m_old).is_err(),
    ));

    Report {
        id: "E15",
        title: "Kung's laws vs Amdahl's linear rule (paper §1)",
        body,
        findings,
    }
}
