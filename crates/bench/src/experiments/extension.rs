//! Experiment E14 (extension): other computations, characterized with the
//! paper's methodology.
//!
//! The paper's concluding remarks: *"Further work in characterizing other
//! computations, in terms of their memory requirements for achieving
//! balanced architectures … will certainly provide additional insights."*
//! This experiment does exactly that for three more computations, all of
//! which land in the I/O-bounded class — but with different saturation
//! ceilings, which is the insight: **the ceiling equals the average reuse of
//! the dominant data set**, and only computations whose reuse grows with `M`
//! can be rebalanced by memory.
//!
//! | computation              | reuse of dominant data | ceiling        |
//! |--------------------------|------------------------|----------------|
//! | transpose                | 1 touch, 0 flops       | ½ (move/word)  |
//! | convolution, k taps      | k                      | ≈ k            |
//! | `Y = A·X` with v vectors | v                      | 2v             |

use balance_core::GrowthLaw;
use balance_kernels::prelude::*;

use crate::report::{Finding, Report};

use super::laws::SEED;

/// E14 — extension kernels: saturation ceilings track data reuse.
#[must_use]
pub fn e14_extension_kernels() -> Report {
    let mut body = String::new();
    let mut findings = Vec::new();

    // --- Classification: all three are I/O-bounded. ---
    body.push_str(&format!(
        "{:<16} {:>14} {:>30}\n",
        "kernel", "ceiling", "measured law"
    ));
    for kernel in extension_kernels() {
        // multi_matvec approaches its ceiling only harmonically in the tile
        // side, so its sweep must run far past the saturation knee.
        let cfg = match kernel.name() {
            "convolution" => SweepConfig::pow2(2000, 6, 13, SEED),
            "transpose" => SweepConfig::pow2(64, 6, 13, SEED),
            _ => SweepConfig::pow2(400, 8, 18, SEED),
        };
        let result = intensity_sweep(kernel.as_ref(), &cfg)
            .unwrap_or_else(|e| panic!("{} failed: {e}", kernel.name()));
        let fit = result.fit().unwrap_or_else(|e| panic!("enough points: {e}"));
        body.push_str(&format!(
            "{:<16} {:>14.1} {:>30}\n",
            kernel.name(),
            kernel.intensity_model().coeff(),
            format!("{}", fit.best)
        ));
        findings.push(Finding::new(
            format!("{} classification", kernel.name()),
            "impossible (I/O-bounded)",
            fit.best.growth_law().to_string(),
            fit.best.growth_law() == GrowthLaw::Impossible,
        ));
    }

    // --- The ceiling tracks filter length for convolution… ---
    body.push_str("\nconvolution ceiling vs filter length:\n");
    for k in [4usize, 16, 64] {
        let kernel = Convolution::new(k);
        let r = kernel
            .run(4000, 1 << 14, SEED)
            .unwrap_or_else(|e| panic!("verified: {e}"))
            .intensity();
        body.push_str(&format!("  k = {k:>3}: saturated intensity {r:.2}\n"));
        findings.push(Finding::new(
            format!("convolution k={k} ceiling"),
            format!("≈ {k}"),
            format!("{r:.2}"),
            (r / k as f64 - 1.0).abs() < 0.10,
        ));
    }

    // --- …and vector count for multi-matvec (the matvec→matmul bridge). ---
    body.push_str("\nmulti-matvec ceiling vs vector count (n = 48·v):\n");
    for v in [1usize, 4, 16] {
        let kernel = MultiMatVec::new(v);
        let n = 48 * v;
        let r = kernel.run(n, 1 << 16, SEED).unwrap_or_else(|e| panic!("verified: {e}")).intensity();
        body.push_str(&format!("  v = {v:>3}: saturated intensity {r:.2}\n"));
        findings.push(Finding::new(
            format!("multi_matvec v={v} ceiling"),
            format!("≈ {}", 2 * v),
            format!("{r:.2}"),
            (r / (2.0 * v as f64) - 1.0).abs() < 0.15,
        ));
    }

    // --- Transpose is pinned at exactly one move per two words. ---
    let r_t = Transpose.run(64, 4096, SEED).unwrap_or_else(|e| panic!("verified: {e}")).intensity();
    findings.push(Finding::new(
        "transpose intensity",
        "exactly 0.5",
        format!("{r_t}"),
        (r_t - 0.5).abs() < 1e-12,
    ));

    Report {
        id: "E14",
        title: "extension: other computations, same methodology (paper §5 outlook)",
        body,
        findings,
    }
}
