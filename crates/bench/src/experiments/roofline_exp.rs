//! Experiment E12: the roofline view of the balance law (extension).

use balance_core::IntensityModel;
use balance_roofline::{kernel_series, render, Roofline};

use crate::report::{Finding, Report};

/// E12 — roofline extension: ridge point = machine balance; balanced
/// memories are the ridge crossings of each kernel's `r(M)` path.
#[must_use]
pub fn e12_roofline() -> Report {
    // A machine with balance 16 op/word (compute-rich, like a scaled PE).
    let rl = Roofline::new(
        balance_core::OpsPerSec::new(1.6e9),
        balance_core::WordsPerSec::new(1.0e8),
    )
    .unwrap_or_else(|e| panic!("valid rates: {e}"));
    let mems: Vec<u64> = (2..=22).map(|k| 1u64 << k).collect();

    let matmul_model = IntensityModel::sqrt_m(1.0 / 3.0f64.sqrt());
    let fft_model = IntensityModel::log2_m(1.5);
    let matvec_model = IntensityModel::constant(2.0);

    let matmul = kernel_series("matmul", &rl, &matmul_model, &mems).unwrap_or_else(|e| panic!("series: {e}"));
    let fft = kernel_series("fft", &rl, &fft_model, &mems).unwrap_or_else(|e| panic!("series: {e}"));
    let matvec = kernel_series("vec (matvec)", &rl, &matvec_model, &mems).unwrap_or_else(|e| panic!("series: {e}"));

    let body = render(&rl, &[matmul.clone(), fft.clone(), matvec.clone()], 64, 18);

    let mut findings = vec![Finding::new(
        "ridge point equals machine balance",
        "16 op/word",
        format!("{:.2}", rl.ridge_point()),
        (rl.ridge_point() - 16.0).abs() < 1e-9,
    )];
    // matmul balanced memory: (16·√3)² ≈ 768.
    let expect_matmul = (16.0 * 3.0f64.sqrt()).powi(2).round() as u64;
    findings.push(Finding::new(
        "matmul balanced memory (ridge crossing)",
        format!("{expect_matmul} words"),
        format!("{:?}", matmul.balanced_memory),
        matmul.balanced_memory == Some(expect_matmul),
    ));
    // fft balanced memory: 2^(16/1.5) ≈ 2^10.67 ≈ 1626 words.
    let expect_fft = 2.0f64.powf(16.0 / 1.5);
    let got_fft = fft.balanced_memory.unwrap_or(0) as f64;
    findings.push(Finding::new(
        "fft balanced memory (ridge crossing)",
        format!("{expect_fft:.0} words"),
        format!("{got_fft:.0}"),
        (got_fft / expect_fft - 1.0).abs() < 0.01,
    ));
    findings.push(Finding::new(
        "matvec never reaches the ridge",
        "no balanced memory",
        format!("{:?}", matvec.balanced_memory),
        matvec.balanced_memory.is_none(),
    ));
    // Monotone attainable throughput, capped at peak.
    let capped = matmul
        .points
        .iter()
        .all(|p| p.attainable <= rl.peak().get() + 1e-6);
    findings.push(Finding::new(
        "attainable throughput never exceeds the roof",
        "true",
        format!("{capped}"),
        capped,
    ));
    Report {
        id: "E12",
        title: "roofline view of the balance law (extension)",
        body,
        findings,
    }
}
