//! Figures F1–F4: the paper's diagrams, regenerated from the library types.

use balance_kernels::fft::decomposition;
use balance_parallel::topology::{render_linear_array, render_mesh};
use balance_parallel::warp_cell;

use crate::report::{Finding, Report};

/// F1 — Fig. 1: the PE characterization diagram (rendered from `PeSpec`).
#[must_use]
pub fn fig1_pe() -> Report {
    let art = warp_cell().to_string();
    let findings = vec![Finding::new(
        "diagram carries C, IO, M",
        "all three labels",
        "rendered",
        art.contains("C  =") && art.contains("IO =") && art.contains("M  ="),
    )];
    Report {
        id: "F1",
        title: "Fig. 1 — processing element characterized by (C, IO, M)",
        body: art,
        findings,
    }
}

/// F2 — Fig. 2: the 16-point FFT decomposed into 4-point blocks.
#[must_use]
pub fn fig2_fft_decomposition() -> Report {
    let d = decomposition(16, 4).unwrap_or_else(|e| panic!("valid Fig. 2 parameters: {e}"));
    let art = d.to_string();
    let findings = vec![
        Finding::new(
            "number of passes",
            "2 (log₄ 16)",
            d.passes.len().to_string(),
            d.passes.len() == 2,
        ),
        Finding::new(
            "blocks per pass",
            "4 blocks of 4 points",
            format!(
                "{} and {}",
                d.passes[0].blocks.len(),
                d.passes[1].blocks.len()
            ),
            d.passes.iter().all(|p| p.blocks.len() == 4)
                && d.passes
                    .iter()
                    .all(|p| p.blocks.iter().all(|b| b.len() == 4)),
        ),
        Finding::new(
            "pass 2 blocks are the shuffled (strided) sets",
            "[0,4,8,12] …",
            format!("{:?}", d.passes[1].blocks[0]),
            d.passes[1].blocks[0] == vec![0, 4, 8, 12],
        ),
    ];
    Report {
        id: "F2",
        title: "Fig. 2 — decomposing the 16-point FFT for M = 4",
        body: art,
        findings,
    }
}

/// F3 — Fig. 3: one PE becomes a linear array.
#[must_use]
pub fn fig3_linear() -> Report {
    let art = render_linear_array(6);
    let findings = vec![Finding::new(
        "six PEs drawn with boundary I/O",
        "6 + 1 PEs",
        art.matches("[PE]").count().to_string(),
        art.matches("[PE]").count() == 7,
    )];
    Report {
        id: "F3",
        title: "Fig. 3 — using p PEs to perform computation formerly done by one PE",
        body: art,
        findings,
    }
}

/// F4 — Fig. 4: one PE becomes a `p × p` mesh.
#[must_use]
pub fn fig4_mesh() -> Report {
    let art = render_mesh(4);
    let findings = vec![Finding::new(
        "4×4 mesh drawn",
        "16 + 1 PEs",
        art.matches("[PE]").count().to_string(),
        art.matches("[PE]").count() == 17,
    )];
    Report {
        id: "F4",
        title: "Fig. 4 — using p × p PEs to perform computation formerly done by one PE",
        body: art,
        findings,
    }
}
