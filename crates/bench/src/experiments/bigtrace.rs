//! Experiment E23 (bigtrace): a billion-address capacity curve in one
//! streamed pass, on the scaled engines.
//!
//! PR 5's one-pass engine made every curve in the paper a single replay;
//! this experiment exercises the *scaled* tiers. At `--scale large` (the
//! CI smoke tier) the trace is an order of magnitude beyond E13's: the
//! naive matmul trace at `n = 700` is `3·700³ = 1.029 × 10⁹` addresses
//! over a `3·700² = 1.47M`-word address space, streamed in O(1) memory
//! per generator; the default small tier replays the same pipeline at
//! `n = 176` (~16M addresses) so the debug-build test suite can afford
//! it. It produces the 16-point `IO(M)` curve twice:
//!
//! * **segmented parallel Mattson** (`Engine::StackDistPar`): the stream
//!   split into one time range per core, per-range histograms merged
//!   exactly — bit-identical to the serial engine (pinned by proptest;
//!   spot-checked here at small `n`);
//! * **SHARDS-style sampling** (`Engine::Sampled`, rate 1/16): the
//!   hash-sampled approximate curve, whose max relative IO error against
//!   the exact curve is reported and asserted.
//!
//! Wall-clocks for both passes are reported, and appended to the
//! `BENCH_JSON` file (as `bigtrace/...` members of `BENCH_6.json`) when
//! the bench-smoke harness asks, so the speedup trajectory is tracked
//! alongside the criterion benches.

use std::time::Instant;

use balance_kernels::matmul::MatMul;
use balance_kernels::sweep::{capacity_sweep, Engine, SweepConfig, SweepResult};
use balance_kernels::Verify;
use balance_machine::{CheckpointPolicy, DEFAULT_CHECKPOINT_EVERY};

use crate::experiments::Scale;
use crate::report::{Finding, Report};

/// Sampling-rate exponent for the approximate pass (rate 1/16).
const SHIFT: u32 = 4;

/// Per-tier problem size and error budget. `Small` (the default tier the
/// test suite replays in debug builds) keeps the same 16-point pipeline
/// on a ~16M-address trace; `Large` — the CI smoke tier — is the
/// billion-address run the experiment exists for: `3·700³ ≥ 10⁹`.
/// The sampled-error budget widens at the small tier because rate-1/16
/// sampling of a `3·176² ≈ 93K`-word address space keeps only ~5.8K
/// addresses, so the law of large numbers has less to work with; at the
/// large tier SHARDS reports ≪ 1% on real workloads and 2% leaves
/// statistical headroom.
fn tier(scale: Scale) -> (usize, u64, f64) {
    match scale {
        Scale::Small => (176, 10_000_000, 0.05),
        Scale::Large => (700, 1_000_000_000, 0.02),
    }
}

/// The checkpoint policy requested through the environment, if any:
/// `BALANCE_CKPT_DIR` names the image directory (the kill/resume CI
/// smoke job sets it before SIGKILLing the run) and `BALANCE_CKPT_EVERY`
/// overrides the interval in addresses (default `2^24`).
fn env_checkpoint() -> Option<CheckpointPolicy> {
    let dir = std::env::var_os("BALANCE_CKPT_DIR")?;
    let every = std::env::var("BALANCE_CKPT_EVERY")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(DEFAULT_CHECKPOINT_EVERY);
    Some(CheckpointPolicy::every(dir, every))
}

fn sweep(n: usize, engine: Engine) -> SweepResult {
    let mut cfg = SweepConfig {
        n,
        memories: (6..=21u32).map(|k| 1usize << k).collect(),
        seed: 0,
        verify: Verify::Full,
        engine,
        ..SweepConfig::default()
    };
    // Only the exact passes checkpoint: the sampled pass is cheap to
    // redo, and skipping it keeps the env-driven smoke run simple.
    if !matches!(engine, Engine::Sampled { .. }) {
        cfg.checkpoint = env_checkpoint();
    }
    capacity_sweep(&MatMul, &cfg).unwrap_or_else(|e| panic!("matmul has a canonical trace: {e}"))
}

/// Appends one `"name": value` member line to the `BENCH_JSON` file when
/// the bench-smoke harness exports it (same line protocol as the
/// criterion shim, so the smoke script folds experiment measurements and
/// bench medians into one `BENCH_<n>.json`).
fn bench_json_line(name: &str, value: u128) {
    use std::io::Write as _;
    let Some(path) = std::env::var_os("BENCH_JSON") else {
        return;
    };
    let line = format!("\"{name}\": {value}\n");
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = written {
        eprintln!("warning: BENCH_JSON write to {path:?} failed: {e}");
    }
}

/// E23 — the scaled-engine capacity curve (≥10⁹ addresses at
/// `--scale large`, the CI smoke tier), with wall-clocks and the
/// sampled-vs-exact error.
#[must_use]
pub fn e23_bigtrace_at(scale: Scale) -> Report {
    let (n, min_addresses, max_rel_err_budget) = tier(scale);
    // The kill/resume CI smoke overrides the problem size: big enough
    // that a SIGKILL lands mid-replay, small enough that the resumed run
    // stays a smoke test. Every finding still runs at the tier's budget.
    let n = std::env::var("BALANCE_BIGTRACE_N")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(n);
    let n64 = n as u64;
    let addresses = 3 * n64.pow(3);
    let floor = 3 * n64.pow(2);

    let t0 = Instant::now();
    let exact = sweep(n, Engine::StackDistPar { threads: 0 });
    let seg_wall = t0.elapsed();
    let t1 = Instant::now();
    let sampled = sweep(n, Engine::Sampled { shift: SHIFT });
    let samp_wall = t1.elapsed();

    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut body = format!(
        "naive matmul trace, n = {n}: {addresses} addresses over {floor} words\n\
         segmented exact pass ({threads} threads): {:.2} s  ({:.1} M addr/s)\n\
         sampled pass (rate 1/{}):            {:.2} s  ({:.1} M addr/s)\n\n\
         {:>9} {:>13} {:>13} {:>10}\n",
        seg_wall.as_secs_f64(),
        addresses as f64 / seg_wall.as_secs_f64() / 1e6,
        1u32 << SHIFT,
        samp_wall.as_secs_f64(),
        addresses as f64 / samp_wall.as_secs_f64() / 1e6,
        "M",
        "IO exact",
        "IO sampled",
        "rel err"
    );
    if let Some(prov) = &exact.provenance {
        // Present only when BALANCE_CKPT_DIR asked for a checkpointed
        // run; names the resume point after a kill.
        body = format!("checkpointed run: {}\n{body}", prov.describe());
    }

    let mut max_rel_err = 0.0f64;
    for (e, s) in exact.runs.iter().zip(&sampled.runs) {
        let io_e = e.execution.cost.io_words();
        let io_s = s.execution.cost.io_words();
        let rel = io_s.abs_diff(io_e) as f64 / io_e as f64;
        max_rel_err = max_rel_err.max(rel);
        body.push_str(&format!(
            "{:>9} {:>13} {:>13} {:>9.4}%\n",
            e.m,
            io_e,
            io_s,
            rel * 100.0
        ));
    }

    bench_json_line("bigtrace/segmented_wall_ns", seg_wall.as_nanos());
    bench_json_line("bigtrace/sampled_wall_ns", samp_wall.as_nanos());
    bench_json_line(
        "bigtrace/sampled_max_rel_err_ppm",
        (max_rel_err * 1e6).round() as u128,
    );

    let ios: Vec<u64> = exact.runs.iter().map(|r| r.execution.cost.io_words()).collect();
    let mut findings = vec![
        Finding::new(
            "trace meets the tier's scale floor",
            format!(">= {min_addresses} addresses"),
            format!("{addresses}"),
            addresses >= min_addresses,
        ),
        Finding::new(
            "full 16-point curve from each engine",
            "16 + 16 points",
            format!("{} + {}", exact.runs.len(), sampled.runs.len()),
            exact.runs.len() == 16 && sampled.runs.len() == 16,
        ),
        Finding::new(
            "segmented IO(M) monotone non-increasing",
            "inclusion property at scale",
            format!("{} -> {}", ios.first().unwrap_or_else(|| panic!("harness invariant violated: value missing")), ios.last().unwrap_or_else(|| panic!("harness invariant violated: value missing"))),
            ios.windows(2).all(|w| w[1] <= w[0]),
        ),
        Finding::new(
            "segmented large-M floor is exactly compulsory",
            format!("{floor} distinct addresses"),
            format!("{}", ios.last().unwrap_or_else(|| panic!("harness invariant violated: value missing"))),
            *ios.last().unwrap_or_else(|| panic!("harness invariant violated: value missing")) == floor,
        ),
        Finding::new(
            "sampled curve tracks exact",
            format!("max relative IO error <= {:.0}%", max_rel_err_budget * 100.0),
            format!("{:.4}%", max_rel_err * 100.0),
            max_rel_err <= max_rel_err_budget,
        ),
    ];

    // Small-n spot check of the tentpole guarantee (the full pin is the
    // machine-crate proptest): segmented == serial, bit for bit.
    let small_serial = sweep(64, Engine::StackDist);
    let small_seg = sweep(64, Engine::StackDistPar { threads: 0 });
    findings.push(Finding::new(
        "segmented engine bit-identical to serial (n = 64 spot check)",
        "identical runs",
        format!("{} points", small_seg.runs.len()),
        small_serial.runs == small_seg.runs,
    ));

    Report {
        id: "E23",
        title: "billion-address capacity curve: segmented parallel + SHARDS-sampled engines",
        body,
        findings,
    }
}
