//! Experiment E27 (store): the crash-safe profile store and the
//! self-healing query service, demonstrated.
//!
//! PR 10's robustness contract: measured profiles live in versioned,
//! checksummed `KBCP` images inside a content-addressed store with
//! atomic publishes; a corrupted, truncated, torn, or version-skewed
//! entry is *detected* and *quarantined* — never served — and the query
//! path heals it by recomputing down the repair ladder and
//! re-persisting, bit-identical to a fresh recompute. This experiment
//! executes the whole fault matrix in-process under the deterministic
//! harness ([`balance_machine::FaultPlan`]) and then measures the warm
//! serve path's throughput.
//!
//! The CI robustness smoke is the out-of-process counterpart: it
//! SIGKILLs a real `balance store build` mid-run, expects `fsck` to
//! account for every image, and the resumed build + serve to agree with
//! a fresh store.

use balance_kernels::prelude::*;
use balance_machine::{FaultPlan, Lookup, ProfileStore, StoreFault};

use crate::report::{Finding, Report};
use crate::storecli::ServeSession;

/// Grid for the in-process store: powers of two so every registry
/// kernel (the FFT included) has a canonical trace.
const GRID: [usize; 2] = [16, 32];

fn tmp_store(tag: &str) -> (std::path::PathBuf, ProfileStore) {
    let dir = std::env::temp_dir().join(format!("balance-e27-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ProfileStore::open(&dir).unwrap_or_else(|e| panic!("temp store opens: {e}"));
    (dir, store)
}

/// E27 — store build/serve bit-identity, the injected-fault matrix
/// (torn write, bit flip, ENOSPC, stale version), and warm-path
/// throughput.
#[must_use]
pub fn e27_store() -> Report {
    let mut body = String::new();
    let mut findings = Vec::new();

    // 1: build the full registry × grid, resumably.
    let (dir, store) = tmp_store("build");
    let kernels = registry();
    let outcome = build_store(
        &store,
        &kernels,
        &GRID,
        TrafficModel::WORD,
        None,
        &FaultPlan::none(),
    )
    .unwrap_or_else(|e| panic!("store build completes: {e}"));
    let expected = kernels.len() * GRID.len();
    body.push_str(&format!(
        "store build: {} kernels x {:?} -> built {}, skipped {}, failed {}\n",
        kernels.len(),
        GRID,
        outcome.built,
        outcome.skipped,
        outcome.failed.len()
    ));
    findings.push(Finding::new(
        "registry x grid builds every entry",
        format!("{expected} built, 0 failed"),
        format!("{} built, {} failed", outcome.built, outcome.failed.len()),
        outcome.built == expected && outcome.failed.is_empty(),
    ));
    let second = build_store(
        &store,
        &kernels,
        &GRID,
        TrafficModel::WORD,
        None,
        &FaultPlan::none(),
    )
    .unwrap_or_else(|e| panic!("second pass completes: {e}"));
    findings.push(Finding::new(
        "second build pass is a no-op (resumable)",
        format!("{expected} skipped, 0 built"),
        format!("{} skipped, {} built", second.skipped, second.built),
        second.skipped == expected && second.built == 0,
    ));

    // 2: served answers are bit-identical to a fresh recompute.
    let service = ProfileService::new(&store);
    let mm = registry_kernel("matmul").unwrap_or_else(|| panic!("matmul registered"));
    let (_, fresh, _) = service
        .recompute(mm.as_ref(), 32, TrafficModel::WORD)
        .unwrap_or_else(|e| panic!("fresh recompute: {e}"));
    let served = service
        .fetch(mm.as_ref(), 32, TrafficModel::WORD)
        .unwrap_or_else(|e| panic!("store fetch: {e}"));
    body.push_str(&format!("matmul n=32 served: {}\n", served.describe()));
    findings.push(Finding::new(
        "store hit serves the recompute's exact bits",
        "hit, payload == fresh recompute",
        served.describe(),
        served.source == ServeSource::Hit && served.payload == fresh,
    ));
    let _ = std::fs::remove_dir_all(&dir);

    // 3: the fault matrix — every injected publish fault is detected,
    // quarantined (or, for ENOSPC, never published), healed by the
    // service, and the healed bits equal the fresh recompute's.
    let matrix = [
        (StoreFault::TornWrite, FaultPlan::none().with_torn_store_writes(1)),
        (StoreFault::BitFlip, FaultPlan::none().with_store_bit_flips(1)),
        (StoreFault::Enospc, FaultPlan::none().with_store_enospc(1)),
        (
            StoreFault::StaleVersion,
            FaultPlan::none().with_stale_store_versions(1),
        ),
    ];
    for (fault, plan) in matrix {
        let (dir, store) = tmp_store(&format!("fault-{fault}"));
        let service = ProfileService::new(&store);
        let (meta, payload, _) = service
            .recompute(mm.as_ref(), 16, TrafficModel::WORD)
            .unwrap_or_else(|e| panic!("recompute: {e}"));
        let key = key_for("matmul", 16, TrafficModel::WORD);
        let published = store.put_with(&meta, &payload, &plan);
        let detected = match (&published, store.get(&key)) {
            // ENOSPC: the publish failed; atomicity means nothing changed.
            (Err(_), Ok(Lookup::Miss)) => true,
            // The other three publish corrupt bits; the next read must
            // detect and quarantine them, never serve them.
            (Ok(()), Ok(Lookup::Quarantined { .. })) => true,
            _ => false,
        };
        let healed = service
            .fetch(mm.as_ref(), 16, TrafficModel::WORD)
            .unwrap_or_else(|e| panic!("heal: {e}"));
        let again = service
            .fetch(mm.as_ref(), 16, TrafficModel::WORD)
            .unwrap_or_else(|e| panic!("refetch: {e}"));
        let fsck = store.fsck().unwrap_or_else(|e| panic!("fsck: {e}"));
        body.push_str(&format!(
            "{fault}: detected={detected}, healed via {}, refetch {}\n",
            healed.describe(),
            again.describe()
        ));
        findings.push(Finding::new(
            format!("{fault}: detected, healed, post-repair bit-identical"),
            "detected; repaired != hit; healed == fresh; next fetch is a hit",
            format!("{} then {}", healed.source, again.source),
            detected
                && healed.source != ServeSource::Hit
                && healed.payload == payload
                && again.source == ServeSource::Hit
                && again.payload == payload
                && fsck.healthy(),
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    // 4: warm-path throughput through the real serve session. The
    // release-build criterion bench (benches/profstore.rs) is the
    // recorded number; this finding keeps the order of magnitude honest
    // in-process (debug builds get a proportionally lower bar).
    let (dir, store) = tmp_store("throughput");
    let mut session = ServeSession::new(&store, TrafficModel::WORD, None, 1.0e9);
    let _ = session.answer("io matmul 32 64"); // warm: repair once
    let queries = 20_000u32;
    let start = std::time::Instant::now();
    for i in 0..queries {
        let m = 16 + u64::from(i % 64) * 16;
        let answered = session.answer(&format!("io matmul 32 {m}"));
        assert!(answered.is_some(), "query answered");
    }
    let qps = f64::from(queries) / start.elapsed().as_secs_f64();
    let bar = if cfg!(debug_assertions) { 1.0e4 } else { 1.0e5 };
    body.push_str(&format!("warm serve path: {qps:.3e} queries/s\n"));
    findings.push(Finding::new(
        "warm serve path sustains batch query rates",
        format!(">= {bar:.0e} queries/s"),
        format!("{qps:.3e} queries/s"),
        qps >= bar,
    ));
    let _ = std::fs::remove_dir_all(&dir);

    Report {
        id: "E27",
        title: "crash-safe profile store: fault matrix, self-healing serve, throughput",
        body,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e27_passes_end_to_end() {
        let report = e27_store();
        assert!(report.passed(), "{report}");
    }
}
