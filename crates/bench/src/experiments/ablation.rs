//! Experiment E13 (ablation): explicit blocking vs LRU caching.
//!
//! The paper's introduction motivates local memory as a cache, but every
//! result in Section 3 is about *decomposition schemes* — explicitly managed
//! memory. This ablation quantifies the difference: the naive triple-loop
//! matmul address trace is run through an LRU cache of capacity `M`, and the
//! resulting ops-per-miss intensity is compared with the blocked kernel's
//! measured intensity at the same `M`. LRU on the naive order falls far
//! short of the `√M` law once the matrices outgrow the cache — the scheme,
//! not the SRAM, earns the balance.
//!
//! The measurement stack is built for scale: the trace streams from
//! [`NaiveTrace`] (O(1) memory — the `n = 512` trace is 402M addresses,
//! ~3 GB materialized) through the **one-pass stack-distance engine**, so
//! the LRU side of the ablation costs a single replay for *all* cache
//! sizes at once (misses at capacity `M` are exactly the accesses with
//! reuse distance > `M` — bit-identical to the per-`M` `LruCache` replay
//! this experiment used to run, pinned by property test). The blocked
//! runs verify by Freivalds checks at large `n` (first point fully
//! verified as the anchor) and fan out across cores. `Scale::Large` is
//! the `repro --scale large` tier.

use balance_kernels::matmul::{tile_side, MatMul, NaiveTrace};
use balance_kernels::sweep::par_map;
use balance_kernels::{Kernel, Verify};
use balance_machine::StackDistance;

use crate::experiments::Scale;
use crate::report::{Finding, Report};

/// E13 — LRU-vs-blocked ablation at equal memory capacity.
#[must_use]
pub fn e13_lru_ablation() -> Report {
    e13_lru_ablation_at(Scale::Small)
}

/// E13 at an explicit scale tier. `Small` (n = 32) is the default and CI
/// regime; `Large` (n = 512) exercises the streaming/direct-indexed path
/// on a 402M-address trace.
#[must_use]
pub fn e13_lru_ablation_at(scale: Scale) -> Report {
    // n chosen so a single matrix (n² words) outgrows every cache size
    // below — the regime the paper's blocking schemes are for.
    let (n, memories): (usize, Vec<usize>) = match scale {
        Scale::Small => (32, vec![48, 108, 192, 432, 768]),
        Scale::Large => (512, vec![3072, 12288, 49152, 110_592, 196_608]),
    };
    let ops = 2 * (n as u64).pow(3);
    let addr_bound = 3 * (n as u64) * (n as u64);

    // The LRU side of every row from ONE replay: stream the naive trace
    // through the stack-distance engine once, then read each capacity's
    // miss count off the histogram (bit-identical to replaying an LRU of
    // that capacity — the Mattson stack property, pinned by proptest).
    // At Scale::Large this turns five 402M-address cache replays into one.
    let profile = {
        let mut engine = StackDistance::with_address_bound(addr_bound);
        engine.observe_trace(NaiveTrace::new(n).map(|a| a.addr));
        engine.into_profile()
    };

    // One verified blocked run per memory size. par_map keeps the rows in
    // sweep order; the first point is the fully-verified anchor (as in
    // intensity_sweep), the rest use the size-appropriate policy.
    let rows: Vec<(usize, f64, f64)> = par_map(&memories, |i, &m| {
        let misses = profile.misses_at(m as u64);
        let lru_intensity = ops as f64 / misses as f64;
        let verify = if i == 0 { Verify::Full } else { Verify::auto(n) };
        let run = MatMul.run_with(n, m, 99, verify).unwrap_or_else(|e| panic!("verified run: {e}"));
        (m, lru_intensity, run.intensity())
    });

    let mut body = format!(
        "{:>8} {:>6} {:>16} {:>16} {:>10}\n",
        "M", "b", "LRU intensity", "blocked intens.", "advantage"
    );
    let mut findings = Vec::new();
    let mut advantages = Vec::new();

    for &(m, lru_intensity, blocked_intensity) in &rows {
        let advantage = blocked_intensity / lru_intensity;
        advantages.push((m, advantage));
        body.push_str(&format!(
            "{:>8} {:>6} {:>16.3} {:>16.3} {:>9.2}x\n",
            m,
            tile_side(m),
            lru_intensity,
            blocked_intensity,
            advantage
        ));
    }

    // The blocked scheme must beat naive+LRU, increasingly so with M.
    let first = advantages.first().unwrap_or_else(|| panic!("nonempty")).1;
    let last = advantages.last().unwrap_or_else(|| panic!("nonempty")).1;
    findings.push(Finding::new(
        "blocked beats naive+LRU at every M",
        "advantage > 1×",
        format!(
            "min {:.2}×",
            advantages.iter().map(|a| a.1).fold(f64::MAX, f64::min)
        ),
        advantages.iter().all(|a| a.1 > 1.0),
    ));
    findings.push(Finding::new(
        "advantage grows with memory",
        "rising",
        format!("{first:.2}× → {last:.2}×"),
        last > first,
    ));

    // Control: when the whole problem fits in cache, LRU is fine — only
    // compulsory misses remain. Read off the same histogram: no extra
    // replay needed.
    let m_fits = 3 * n * n + 8;
    let misses = profile.misses_at(m_fits as u64);
    findings.push(Finding::new(
        "control: fully-resident problem has compulsory misses only",
        format!("{} misses (A, B, C touched once)", 3 * n * n),
        format!("{misses} misses"),
        misses == (3 * n * n) as u64,
    ));

    Report {
        id: "E13",
        title: "ablation: explicit blocking vs LRU caching at equal capacity",
        body,
        findings,
    }
}
