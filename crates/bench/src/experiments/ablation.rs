//! Experiment E13 (ablation): explicit blocking vs LRU caching.
//!
//! The paper's introduction motivates local memory as a cache, but every
//! result in Section 3 is about *decomposition schemes* — explicitly managed
//! memory. This ablation quantifies the difference: the naive triple-loop
//! matmul address trace is run through an LRU cache of capacity `M`, and the
//! resulting ops-per-miss intensity is compared with the blocked kernel's
//! measured intensity at the same `M`. LRU on the naive order falls far
//! short of the `√M` law once the matrices outgrow the cache — the scheme,
//! not the SRAM, earns the balance.

use balance_kernels::matmul::{naive_address_trace, tile_side, MatMul};
use balance_kernels::Kernel;
use balance_machine::LruCache;

use crate::report::{Finding, Report};

/// E13 — LRU-vs-blocked ablation at equal memory capacity.
#[must_use]
pub fn e13_lru_ablation() -> Report {
    // n chosen so a single matrix (n² = 1024 words) outgrows every cache
    // size below — the regime the paper's blocking schemes are for.
    let n = 32usize;
    let ops = 2 * (n as u64).pow(3);
    let trace = naive_address_trace(n);

    let mut body = format!(
        "{:>8} {:>6} {:>16} {:>16} {:>10}\n",
        "M", "b", "LRU intensity", "blocked intens.", "advantage"
    );
    let mut findings = Vec::new();
    let mut advantages = Vec::new();

    for m in [48usize, 108, 192, 432, 768] {
        let mut cache = LruCache::with_capacity_words(m);
        let misses = cache.run_trace(trace.iter().copied());
        let lru_intensity = ops as f64 / misses as f64;

        let run = MatMul.run(n, m, 99).expect("verified run");
        let blocked_intensity = run.intensity();
        let advantage = blocked_intensity / lru_intensity;
        advantages.push((m, advantage));
        body.push_str(&format!(
            "{:>8} {:>6} {:>16.3} {:>16.3} {:>9.2}x\n",
            m,
            tile_side(m),
            lru_intensity,
            blocked_intensity,
            advantage
        ));
    }

    // The blocked scheme must beat naive+LRU, increasingly so with M.
    let first = advantages.first().expect("nonempty").1;
    let last = advantages.last().expect("nonempty").1;
    findings.push(Finding::new(
        "blocked beats naive+LRU at every M",
        "advantage > 1×",
        format!(
            "min {:.2}×",
            advantages.iter().map(|a| a.1).fold(f64::MAX, f64::min)
        ),
        advantages.iter().all(|a| a.1 > 1.0),
    ));
    findings.push(Finding::new(
        "advantage grows with memory",
        "rising",
        format!("{first:.2}× → {last:.2}×"),
        last > first,
    ));

    // Control: when the whole problem fits in cache, LRU is fine — only
    // compulsory misses remain.
    let m_fits = 3 * n * n + 8;
    let mut cache = LruCache::with_capacity_words(m_fits);
    let misses = cache.run_trace(trace.iter().copied());
    findings.push(Finding::new(
        "control: fully-resident problem has compulsory misses only",
        format!("{} misses (A, B, C touched once)", 3 * n * n),
        format!("{misses} misses"),
        misses == (3 * n * n) as u64,
    ));

    Report {
        id: "E13",
        title: "ablation: explicit blocking vs LRU caching at equal capacity",
        body,
        findings,
    }
}
