//! Experiment E24 (resume): fault-tolerant long runs, demonstrated.
//!
//! PR 7's robustness layer promises that a multi-hour replay is never
//! lost to a crash and never OOMs a shared host: checkpoints make a
//! killed replay resumable *bit-identically*, corrupt images are
//! detected and discarded (never trusted), resource budgets degrade the
//! engine down the sampling ladder instead of failing, and dead segment
//! workers are retried. This experiment executes each of those promises
//! under the deterministic fault-injection harness
//! ([`balance_machine::FaultPlan`]) and checks the results against the
//! uninterrupted exact curve.
//!
//! The CI kill/resume smoke job is the out-of-process counterpart: it
//! SIGKILLs a checkpointed `repro -- bigtrace` run mid-replay, re-runs
//! it, and expects the resumed curve to pass the same assertions — this
//! experiment pins the same behavior in-process, deterministically, at
//! every `cargo test`.

use balance_kernels::matmul::MatMul;
use balance_kernels::sweep::{robust_capacity_profile, Engine, SweepConfig};
use balance_kernels::{Kernel, KernelError};
use balance_machine::{CheckpointPolicy, FaultPlan, StackDistance};
use balance_core::Budget;

use crate::report::{Finding, Report};

/// Problem size: `3·64³ ≈ 786K` addresses — big enough for several
/// checkpoint intervals, small enough for the debug-build test suite.
const N: usize = 64;

/// Checkpoint interval in addresses (~15 images over the trace).
const EVERY: u64 = 50_000;

/// Where the kill is injected: past several checkpoints, mid-trace.
const DIE_AT: u64 = 400_000;

fn sweep_cfg(engine: Engine, policy: Option<CheckpointPolicy>) -> SweepConfig {
    SweepConfig {
        n: N,
        memories: vec![64, 1024],
        engine,
        checkpoint: policy,
        ..SweepConfig::default()
    }
}

fn tmp_policy(tag: &str) -> CheckpointPolicy {
    let dir = std::env::temp_dir().join(format!("balance-e24-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    CheckpointPolicy::every(dir, EVERY)
}

/// E24 — kill/resume bit-identity, corrupt-image fallback, budget
/// degradation with provenance, and segment-worker retry, all under the
/// seeded fault harness.
#[must_use]
pub fn e24_resume() -> Report {
    let trace = MatMul
        .access_trace(N)
        .unwrap_or_else(|| panic!("matmul has a canonical trace"));
    let len = trace.len();
    let bound = trace.addr_bound();
    let reference = StackDistance::profile_of_bounded(trace.into_addrs(), bound);

    let mut body = format!(
        "naive matmul trace, n = {N}: {len} addresses over {bound} words\n\
         checkpoint interval: {EVERY} addresses; injected kill at address {DIE_AT}\n\n"
    );
    let mut findings = Vec::new();

    // 1+2: a killed checkpointed replay is a typed interruption, and the
    // re-run resumes from the persisted image to the exact curve.
    let policy = tmp_policy("kill");
    let cfg = sweep_cfg(Engine::StackDist, Some(policy.clone()));
    let killed = robust_capacity_profile(&MatMul, &cfg, &FaultPlan::none().with_die_at(DIE_AT));
    findings.push(Finding::new(
        "injected kill mid-replay is the typed interruption",
        "KernelError::Interrupted",
        format!("{killed:?}").chars().take(60).collect::<String>(),
        matches!(killed, Err(KernelError::Interrupted { .. })),
    ));
    let (resumed_profile, prov) = robust_capacity_profile(&MatMul, &cfg, &FaultPlan::none())
        .unwrap_or_else(|e| panic!("resumed replay completes: {e}"));
    let resumed_at = prov.resumed_at.unwrap_or(0);
    body.push_str(&format!("resume after kill: {}\n", prov.describe()));
    findings.push(Finding::new(
        "re-run resumes from the last persisted checkpoint",
        format!("resumed in ({EVERY}..{DIE_AT}] addresses"),
        format!("resumed at {resumed_at}"),
        (EVERY..=DIE_AT).contains(&resumed_at),
    ));
    findings.push(Finding::new(
        "resumed curve bit-identical to the uninterrupted replay",
        "identical capacity profiles",
        format!("{} accesses", resumed_profile.accesses()),
        resumed_profile == reference,
    ));
    let _ = std::fs::remove_dir_all(&policy.dir);

    // 3: corrupted checkpoint images are rejected by the checksum; the
    // replay restarts from scratch and is still exact.
    let policy = tmp_policy("corrupt");
    let cfg = sweep_cfg(Engine::StackDist, Some(policy.clone()));
    let faults = FaultPlan::none()
        .with_die_at(DIE_AT)
        .with_corrupt_checkpoints(u32::MAX);
    let _ = robust_capacity_profile(&MatMul, &cfg, &faults);
    let (fresh_profile, prov) = robust_capacity_profile(&MatMul, &cfg, &FaultPlan::none())
        .unwrap_or_else(|e| panic!("fresh replay completes: {e}"));
    body.push_str(&format!("resume after corruption: {}\n", prov.describe()));
    findings.push(Finding::new(
        "corrupt checkpoint image discarded, fresh replay still exact",
        "no resume, identical profiles",
        format!("resumed_at = {:?}", prov.resumed_at),
        prov.resumed_at.is_none() && fresh_profile == reference,
    ));
    let _ = std::fs::remove_dir_all(&policy.dir);

    // 4: a tripped memory budget degrades down the ladder to the sampled
    // engine — reported in the provenance — instead of failing; and the
    // degraded profile self-identifies as approximate, which is what
    // keeps it out of exact-only fast paths downstream.
    let budget = Budget::unlimited().with_max_resident_bytes(16 * 1024);
    let cfg = sweep_cfg(Engine::StackDistPar { threads: 0 }, None).with_budget(budget);
    let (degraded_profile, prov) = robust_capacity_profile(&MatMul, &cfg, &FaultPlan::none())
        .unwrap_or_else(|e| panic!("degraded sweep completes: {e}"));
    body.push_str(&format!("tripped 16 kB budget: {}\n", prov.describe()));
    findings.push(Finding::new(
        "tripped resident budget degrades to the sampled engine",
        "provenance: degraded ... -> sampled",
        prov.describe(),
        prov.degraded() && matches!(prov.used, Engine::Sampled { .. }),
    ));
    findings.push(Finding::new(
        "degraded profile self-identifies as approximate",
        "is_exact() == false",
        format!("is_exact = {}", degraded_profile.is_exact()),
        !degraded_profile.is_exact(),
    ));

    // 5: a segment worker killed by the harness is retried (bounded) and
    // the segmented result stays exact.
    let policy = tmp_policy("segkill");
    let cfg = sweep_cfg(Engine::StackDistPar { threads: 3 }, Some(policy.clone()));
    let faults = FaultPlan::none().with_kill_segment(1, 1);
    let (seg_profile, prov) = robust_capacity_profile(&MatMul, &cfg, &faults)
        .unwrap_or_else(|e| panic!("segment retry completes: {e}"));
    body.push_str(&format!("killed segment worker: {}\n", prov.describe()));
    findings.push(Finding::new(
        "dead segment worker retried; segmented curve still exact",
        ">= 1 retry, identical profiles",
        format!("{} segment retries", prov.segment_retries),
        prov.segment_retries >= 1 && seg_profile == reference,
    ));
    let _ = std::fs::remove_dir_all(&policy.dir);

    Report {
        id: "E24",
        title: "fault-tolerant long runs: kill/resume, corrupt images, budgets, worker death",
        body,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e24_passes_end_to_end() {
        let report = e24_resume();
        assert!(report.passed(), "{report}");
    }
}
