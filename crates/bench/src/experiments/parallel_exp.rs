//! Experiments E8–E10: the Section-4 architecture results and the Warp
//! case study, plus the systolic decomposability demonstrations.

use balance_core::{GrowthLaw, Words};
use balance_kernels::{reference, workload};
use balance_parallel::systolic::givens::triangularize;
use balance_parallel::systolic::matmul::systolic_matmul;
use balance_parallel::warp::{case_study, default_computations};
use balance_parallel::{growth_exponent, linear_array_series, mesh_series, warp_cell};

use crate::report::{Finding, Report};

const PS: [u64; 7] = [1, 2, 4, 8, 16, 32, 64];

fn series_table(series: &[balance_parallel::ScalingPoint]) -> String {
    let mut s = format!(
        "{:>6} {:>18} {:>18}\n",
        "p", "per-PE memory", "total memory"
    );
    for pt in series {
        s.push_str(&format!(
            "{:>6} {:>18} {:>18}\n",
            pt.p, pt.per_pe_memory, pt.total_memory
        ));
    }
    s
}

/// E8 — §4.1 / Fig. 3: linear arrays need per-PE memory ∝ p.
#[must_use]
pub fn e8_linear_array() -> Report {
    let cell = warp_cell();
    let m_old = Words::new(4096);
    let law = GrowthLaw::Polynomial { degree: 2.0 };
    let series = linear_array_series(cell, law, m_old, &PS[1..]).unwrap_or_else(|e| panic!("law is possible: {e}"));
    let slope = growth_exponent(&series);

    let mut findings = vec![Finding::new(
        "per-PE memory growth exponent (matmul law)",
        "1.0 (linear in p)",
        format!("{slope:.4}"),
        (slope - 1.0).abs() < 0.01,
    )];
    // Spot value: p = 16 needs 16x the memory per PE.
    let p16 = series.iter().find(|s| s.p == 16).unwrap_or_else(|| panic!("p=16 in series"));
    findings.push(Finding::new(
        "per-PE memory at p=16",
        "16 × 4096 = 65536",
        p16.per_pe_memory.to_string(),
        p16.per_pe_memory == 65_536,
    ));
    Report {
        id: "E8",
        title: "linear array (§4.1, Fig. 3): per-PE memory grows linearly with p",
        body: series_table(&series),
        findings,
    }
}

/// E9 — §4.2 / Fig. 4: square meshes are self-balancing for α²-laws;
/// systolic algorithms realize the decomposition with O(1) memory per cell.
#[must_use]
pub fn e9_mesh() -> Report {
    let cell = warp_cell();
    let m_old = Words::new(4096);

    let matmul_series = mesh_series(cell, GrowthLaw::Polynomial { degree: 2.0 }, m_old, &PS[1..])
        .unwrap_or_else(|e| panic!("law is possible: {e}"));
    let grid3_series = mesh_series(cell, GrowthLaw::Polynomial { degree: 3.0 }, m_old, &PS[1..])
        .unwrap_or_else(|e| panic!("law is possible: {e}"));

    let slope2 = growth_exponent(&matmul_series);
    let slope3 = growth_exponent(&grid3_series);

    let mut body = String::from("-- matmul law (α²) --\n");
    body.push_str(&series_table(&matmul_series));
    body.push_str("-- 3-d grid law (α³) --\n");
    body.push_str(&series_table(&grid3_series));

    let mut findings = vec![
        Finding::new(
            "mesh per-PE memory exponent (matmul law)",
            "0.0 (constant: self-balancing)",
            format!("{slope2:.4}"),
            slope2.abs() < 0.01,
        ),
        Finding::new(
            "mesh per-PE memory exponent (3-d grid law)",
            "1.0 (p^(d-2): never self-balancing)",
            format!("{slope3:.4}"),
            (slope3 - 1.0).abs() < 0.01,
        ),
    ];

    // Decomposability premise: the systolic algorithms actually work.
    let n = 12;
    let a = workload::random_matrix(n, 77);
    let b = workload::random_matrix(n, 78);
    let run = systolic_matmul(&a, &b, n);
    let want = reference::matmul(&a, &b, n);
    let mm_err = reference::max_abs_diff(&run.c, &want);
    findings.push(Finding::new(
        "systolic matmul on 12×12 mesh",
        "exact product, 3 words/cell",
        format!("err {mm_err:.1e}, {} words/cell", run.memory_per_cell),
        mm_err < 1e-10 && run.memory_per_cell == 3,
    ));

    let aq = workload::random_matrix(n, 79);
    let qr = triangularize(&aq, n);
    // RᵀR must equal AᵀA.
    let mut max_err = 0.0f64;
    for i in 0..n {
        for j in 0..n {
            let mut rr = 0.0;
            let mut aa = 0.0;
            for k in 0..n {
                rr += qr.r[k * n + i] * qr.r[k * n + j];
                aa += aq[k * n + i] * aq[k * n + j];
            }
            max_err = max_err.max((rr - aa).abs());
        }
    }
    findings.push(Finding::new(
        "Gentleman–Kung triangularization array",
        "RᵀR = AᵀA, 2 words/cell",
        format!("err {max_err:.1e}, {} words/cell", qr.memory_per_cell),
        max_err < 1e-8 && qr.memory_per_cell == 2,
    ));

    Report {
        id: "E9",
        title: "square mesh (§4.2, Fig. 4): self-balancing for α²-laws",
        body,
        findings,
    }
}

/// E10 — §5: the Warp machine case study.
#[must_use]
pub fn e10_warp() -> Report {
    let report = case_study(&default_computations()).unwrap_or_else(|e| panic!("constants valid: {e}"));
    let mut findings = vec![
        Finding::new(
            "Warp cell machine balance C/IO",
            "0.5 op/word",
            format!("{}", report.cell_balance),
            (report.cell_balance - 0.5).abs() < 1e-12,
        ),
        Finding::new(
            "10-cell array balance",
            "5.0 op/word",
            format!("{}", report.array_balance),
            (report.array_balance - 5.0).abs() < 1e-12,
        ),
    ];
    // The paper's qualitative claim: 64K + high I/O bandwidth = headroom.
    let matmul = &report.rows[0];
    findings.push(Finding::new(
        "64K-word memory headroom for matrix work",
        "large (≫10×)",
        format!("{:.0}×", matmul.headroom.unwrap_or(0.0)),
        matmul.headroom.unwrap_or(0.0) > 10.0,
    ));
    let fft = report
        .rows
        .iter()
        .find(|r| r.computation == "fft")
        .unwrap_or_else(|| panic!("fft row"));
    findings.push(Finding::new(
        "FFT headroom is much smaller than matmul's",
        "ratio > 2×",
        format!(
            "matmul {:.0}× vs fft {:.0}×",
            matmul.headroom.unwrap_or(0.0),
            fft.headroom.unwrap_or(0.0)
        ),
        matmul.headroom.unwrap_or(0.0) > 2.0 * fft.headroom.unwrap_or(f64::INFINITY) / 2.0
            && fft.headroom.unwrap_or(f64::INFINITY) < matmul.headroom.unwrap_or(0.0) / 2.0,
    ));
    Report {
        id: "E10",
        title: "Warp machine case study (§5)",
        body: report.to_string(),
        findings,
    }
}
