//! The `balance` command-line explorer: interactive access to the model.
//!
//! All logic lives here as pure string-producing functions so it is unit
//! testable; `src/bin/balance.rs` is a thin argv wrapper.

use std::collections::HashMap;

use balance_core::prelude::*;
use balance_kernels::prelude::*;

/// Parsed command-line flags: `--key value` pairs after a subcommand.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Flags {
    map: HashMap<String, String>,
}

impl Flags {
    /// Parses `--key value` pairs.
    ///
    /// # Errors
    ///
    /// Returns a message for dangling or malformed flags.
    pub fn parse(args: &[String]) -> Result<Flags, String> {
        let mut map = HashMap::new();
        let mut it = args.iter();
        while let Some(key) = it.next() {
            let Some(name) = key.strip_prefix("--") else {
                return Err(format!("expected --flag, got {key}"));
            };
            let Some(value) = it.next() else {
                return Err(format!("flag --{name} is missing a value"));
            };
            map.insert(name.to_string(), value.clone());
        }
        Ok(Flags { map })
    }

    /// A required f64 flag.
    ///
    /// # Errors
    ///
    /// Missing or unparsable values.
    pub fn f64(&self, name: &str) -> Result<f64, String> {
        self.map
            .get(name)
            .ok_or(format!("missing required flag --{name}"))?
            .parse()
            .map_err(|e| format!("--{name}: {e}"))
    }

    /// A required u64 flag.
    ///
    /// # Errors
    ///
    /// Missing or unparsable values.
    pub fn u64(&self, name: &str) -> Result<u64, String> {
        self.map
            .get(name)
            .ok_or(format!("missing required flag --{name}"))?
            .parse()
            .map_err(|e| format!("--{name}: {e}"))
    }

    /// An optional string flag.
    #[must_use]
    pub fn str_opt(&self, name: &str) -> Option<&str> {
        self.map.get(name).map(String::as_str)
    }
}

/// The intensity model registry for the CLI, keyed by computation name.
///
/// # Errors
///
/// Unknown names, with the list of valid ones.
pub fn model_by_name(name: &str) -> Result<IntensityModel, String> {
    Ok(match name {
        "matmul" => IntensityModel::sqrt_m(1.0 / 3.0f64.sqrt()),
        "lu" | "triangularization" => IntensityModel::sqrt_m(0.5 / 3.0f64.sqrt()),
        "grid1" => IntensityModel::root_m(1, 0.6),
        "grid2" => IntensityModel::root_m(2, 0.884),
        "grid3" => IntensityModel::root_m(3, 0.926),
        "grid4" => IntensityModel::root_m(4, 0.945),
        "fft" => IntensityModel::log2_m(1.5),
        "sort" => IntensityModel::log2_m(0.9),
        "matvec" | "trisolve" => IntensityModel::constant(2.0),
        other => {
            return Err(format!(
                "unknown computation '{other}' (try: matmul, lu, grid1..grid4, fft, sort, matvec)"
            ))
        }
    })
}

/// `balance pe --c <ops/s> --io <words/s> --m <words>`: characterize a PE.
///
/// # Errors
///
/// Flag or model errors, as user-facing strings.
pub fn cmd_pe(flags: &Flags) -> Result<String, String> {
    let pe = PeSpec::new(
        OpsPerSec::new(flags.f64("c")?),
        WordsPerSec::new(flags.f64("io")?),
        Words::new(flags.u64("m")?),
    )
    .map_err(|e| e.to_string())?;
    let mut out = format!(
        "{pe}\n\nmachine balance C/IO = {:.4} op/word\n",
        pe.machine_balance()
    );
    out.push_str("\nbalanced memory per computation at this C/IO:\n");
    out.push_str(&format!(
        "{:<12} {:>16} {:>10}\n",
        "computation", "M_bal (words)", "fits?"
    ));
    for name in ["matmul", "lu", "grid2", "grid3", "fft", "sort", "matvec"] {
        let model = model_by_name(name)?;
        let row = match model.balanced_memory(pe.machine_balance()) {
            Ok(m) => format!(
                "{:<12} {:>16} {:>10}\n",
                name,
                m.get(),
                if m <= pe.memory() { "yes" } else { "NO" }
            ),
            Err(BalanceError::IoBounded) => {
                format!("{:<12} {:>16} {:>10}\n", name, "impossible", "-")
            }
            Err(e) => return Err(e.to_string()),
        };
        out.push_str(&row);
    }
    Ok(out)
}

/// `balance rebalance --law <name> --alpha <f> --m <words>`: the paper's
/// question, answered.
///
/// # Errors
///
/// Flag or model errors, as user-facing strings.
pub fn cmd_rebalance(flags: &Flags) -> Result<String, String> {
    let law = flags
        .str_opt("law")
        .ok_or("missing required flag --law".to_string())?;
    let model = model_by_name(law)?;
    let alpha = Alpha::new(flags.f64("alpha")?).map_err(|e| e.to_string())?;
    let m_old = Words::new(flags.u64("m")?);
    match rebalance(&model, alpha, m_old) {
        Ok(plan) => Ok(format!("{law}: {plan}\n")),
        Err(e) => Ok(format!("{law}: {e}\n")),
    }
}

/// Parses a `--verify` flag value into a [`Verify`] policy.
///
/// # Errors
///
/// Unknown mode names, with the list of valid ones.
pub fn verify_by_name(name: &str) -> Result<Verify, String> {
    Ok(match name {
        "full" => Verify::Full,
        "freivalds" => Verify::Freivalds { rounds: 2 },
        "none" => Verify::None,
        other => Err(format!(
            "unknown verify mode '{other}' (try: full, freivalds, none)"
        ))?,
    })
}

/// `balance sweep --kernel <name> --n <size> [--seed <u64>]
/// [--verify full|freivalds|none]`: run a real measured sweep (in
/// parallel across cores) and fit the law.
///
/// # Errors
///
/// Flag, kernel, or fitting errors, as user-facing strings.
pub fn cmd_sweep(flags: &Flags) -> Result<String, String> {
    let name = flags
        .str_opt("kernel")
        .ok_or("missing required flag --kernel".to_string())?;
    let n = flags.u64("n")? as usize;
    let seed = flags.u64("seed").unwrap_or(42);
    let verify = match flags.str_opt("verify") {
        Some(mode) => verify_by_name(mode)?,
        Option::None => Verify::auto(n),
    };
    let kernel: Box<dyn Kernel> = match name {
        "matmul" => Box::new(MatMul),
        "lu" | "triangularization" => Box::new(Triangularization),
        "grid2" => Box::new(GridRelaxation::new(2)),
        "grid3" => Box::new(GridRelaxation::new(3)),
        "fft" => Box::new(Fft),
        "sort" => Box::new(ExternalSort),
        "matvec" => Box::new(MatVec),
        "trisolve" => Box::new(TriSolve),
        other => return Err(format!("unknown kernel '{other}'")),
    };
    let cfg = SweepConfig::pow2(n, 5, 12, seed).with_verify(verify);
    let result = intensity_sweep_par(kernel.as_ref(), &cfg).map_err(|e| e.to_string())?;
    let mut out = format!(
        "{:>10} {:>14} {:>14} {:>10}\n",
        "M (words)", "C_comp", "C_io", "ratio"
    );
    for run in &result.runs {
        out.push_str(&format!(
            "{:>10} {:>14} {:>14} {:>10.3}\n",
            run.m,
            run.execution.cost.comp_ops(),
            run.execution.cost.io_words(),
            run.intensity()
        ));
    }
    let fit = result.fit().map_err(|e| e.to_string())?;
    out.push_str(&format!(
        "\nfitted: {}\ngrowth rule: {}\n",
        fit.best,
        fit.best.growth_law()
    ));
    Ok(out)
}

/// `balance warp`: the §5 case study.
#[must_use]
pub fn cmd_warp() -> String {
    balance_parallel::case_study(&balance_parallel::warp::default_computations())
        .expect("constants valid")
        .to_string()
}

/// Top-level dispatch; returns the output text or a usage error.
///
/// # Errors
///
/// User-facing messages for unknown commands or bad flags.
pub fn dispatch(args: &[String]) -> Result<String, String> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(usage());
    };
    let flags = Flags::parse(rest)?;
    match cmd.as_str() {
        "pe" => cmd_pe(&flags),
        "rebalance" => cmd_rebalance(&flags),
        "sweep" => cmd_sweep(&flags),
        "warp" => Ok(cmd_warp()),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(format!("unknown command '{other}'\n\n{}", usage())),
    }
}

/// The usage string.
#[must_use]
pub fn usage() -> String {
    "balance — explore Kung's (1985) balance model

USAGE:
  balance pe --c <ops/s> --io <words/s> --m <words>
      Characterize a PE: machine balance + balanced memory per computation.
  balance rebalance --law <matmul|lu|grid1..grid4|fft|sort|matvec> --alpha <f> --m <words>
      The paper's question: how much memory restores balance after C/IO grows α-fold?
  balance sweep --kernel <matmul|lu|grid2|grid3|fft|sort|matvec|trisolve> --n <size> [--seed <u64>] [--verify full|freivalds|none]
      Run the instrumented kernel across a memory sweep (parallel across
      cores; default verification: full up to n=64, anchored Freivalds
      beyond) and fit the law.
  balance warp
      The §5 Warp machine case study.
"
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| (*x).to_string()).collect()
    }

    #[test]
    fn flags_parse_pairs() {
        let f = Flags::parse(&args(&["--alpha", "2.5", "--m", "4096"])).unwrap();
        assert_eq!(f.f64("alpha").unwrap(), 2.5);
        assert_eq!(f.u64("m").unwrap(), 4096);
        assert!(f.f64("missing").is_err());
    }

    #[test]
    fn flags_reject_malformed_input() {
        assert!(Flags::parse(&args(&["alpha", "2"])).is_err());
        assert!(Flags::parse(&args(&["--alpha"])).is_err());
        let f = Flags::parse(&args(&["--alpha", "abc"])).unwrap();
        assert!(f.f64("alpha").is_err());
    }

    #[test]
    fn model_registry_matches_paper() {
        assert!(matches!(
            model_by_name("matmul").unwrap(),
            IntensityModel::Power { .. }
        ));
        assert!(matches!(
            model_by_name("fft").unwrap(),
            IntensityModel::Log2 { .. }
        ));
        assert!(matches!(
            model_by_name("matvec").unwrap(),
            IntensityModel::Constant { .. }
        ));
        assert!(model_by_name("nonsense").is_err());
    }

    #[test]
    fn pe_command_renders_table() {
        let f = Flags::parse(&args(&["--c", "1e8", "--io", "1e7", "--m", "4096"])).unwrap();
        let out = cmd_pe(&f).unwrap();
        assert!(out.contains("machine balance C/IO = 10"));
        assert!(out.contains("matmul"));
        assert!(out.contains("impossible")); // matvec row
    }

    #[test]
    fn rebalance_command_answers_and_refuses() {
        let f = Flags::parse(&args(&["--law", "matmul", "--alpha", "2", "--m", "100"])).unwrap();
        let out = cmd_rebalance(&f).unwrap();
        assert!(out.contains("400 words"), "{out}");
        let f = Flags::parse(&args(&["--law", "matvec", "--alpha", "2", "--m", "100"])).unwrap();
        let out = cmd_rebalance(&f).unwrap();
        assert!(out.contains("I/O-bounded"));
    }

    #[test]
    fn sweep_command_runs_a_real_kernel() {
        let f = Flags::parse(&args(&["--kernel", "matmul", "--n", "24"])).unwrap();
        let out = cmd_sweep(&f).unwrap();
        assert!(out.contains("fitted:"));
        assert!(out.contains("growth rule:"));
    }

    #[test]
    fn sweep_verify_modes_measure_identically() {
        let full = cmd_sweep(
            &Flags::parse(&args(&["--kernel", "matmul", "--n", "24", "--verify", "full"]))
                .unwrap(),
        )
        .unwrap();
        let cheap = cmd_sweep(
            &Flags::parse(&args(&[
                "--kernel", "matmul", "--n", "24", "--verify", "freivalds",
            ]))
            .unwrap(),
        )
        .unwrap();
        // Verification policy changes checking cost, never the measurement.
        assert_eq!(full, cheap);
        let f = Flags::parse(&args(&["--kernel", "matmul", "--n", "8", "--verify", "bogus"]))
            .unwrap();
        assert!(cmd_sweep(&f).is_err());
    }

    #[test]
    fn verify_registry_parses_all_modes() {
        assert_eq!(verify_by_name("full").unwrap(), Verify::Full);
        assert_eq!(
            verify_by_name("freivalds").unwrap(),
            Verify::Freivalds { rounds: 2 }
        );
        assert_eq!(verify_by_name("none").unwrap(), Verify::None);
        assert!(verify_by_name("3").is_err());
    }

    #[test]
    fn dispatch_handles_commands_and_errors() {
        assert!(dispatch(&args(&["help"])).unwrap().contains("USAGE"));
        assert!(dispatch(&args(&["warp"])).unwrap().contains("Warp"));
        assert!(dispatch(&args(&["bogus"])).is_err());
        assert!(dispatch(&[]).is_err());
    }
}
