//! The `balance` command-line explorer: interactive access to the model.
//!
//! All logic lives here as pure string-producing functions so it is unit
//! testable; `src/bin/balance.rs` is a thin argv wrapper.

use std::collections::HashMap;

use balance_core::prelude::*;
use balance_kernels::prelude::*;
use balance_machine::{CheckpointPolicy, DEFAULT_CHECKPOINT_EVERY};
use balance_parallel::{
    parallel_sweep_par, ParGrid2d, ParMatMul, ParTranspose, ParallelKernel, ParallelSweepConfig,
    Topology, TopologyKind,
};
use balance_roofline::{HierarchicalRoofline, ParallelRoofline};

/// Parsed command-line flags: `--key value` pairs after a subcommand.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Flags {
    map: HashMap<String, String>,
}

impl Flags {
    /// Parses `--key value` pairs.
    ///
    /// # Errors
    ///
    /// Returns a message for dangling or malformed flags.
    pub fn parse(args: &[String]) -> Result<Flags, String> {
        let mut map = HashMap::new();
        let mut it = args.iter();
        while let Some(key) = it.next() {
            let Some(name) = key.strip_prefix("--") else {
                return Err(format!("expected --flag, got {key}"));
            };
            let Some(value) = it.next() else {
                return Err(format!("flag --{name} is missing a value"));
            };
            map.insert(name.to_string(), value.clone());
        }
        Ok(Flags { map })
    }

    /// A required f64 flag.
    ///
    /// # Errors
    ///
    /// Missing or unparsable values.
    pub fn f64(&self, name: &str) -> Result<f64, String> {
        self.map
            .get(name)
            .ok_or(format!("missing required flag --{name}"))?
            .parse()
            .map_err(|e| format!("--{name}: {e}"))
    }

    /// A required u64 flag.
    ///
    /// # Errors
    ///
    /// Missing or unparsable values.
    pub fn u64(&self, name: &str) -> Result<u64, String> {
        self.map
            .get(name)
            .ok_or(format!("missing required flag --{name}"))?
            .parse()
            .map_err(|e| format!("--{name}: {e}"))
    }

    /// An optional string flag.
    #[must_use]
    pub fn str_opt(&self, name: &str) -> Option<&str> {
        self.map.get(name).map(String::as_str)
    }
}

/// The canonical computation names the table-rendering commands iterate —
/// one per distinct law in [`model_by_name`] (aliases like `trisolve` and
/// the rarely-plotted `grid1`/`grid4` resolve to the same models).
pub const MODEL_NAMES: [&str; 7] = ["matmul", "lu", "grid2", "grid3", "fft", "sort", "matvec"];

/// The intensity model registry for the CLI, keyed by computation name.
///
/// # Errors
///
/// Unknown names, with the list of valid ones.
pub fn model_by_name(name: &str) -> Result<IntensityModel, String> {
    Ok(match name {
        "matmul" => IntensityModel::sqrt_m(1.0 / 3.0f64.sqrt()),
        "lu" | "triangularization" => IntensityModel::sqrt_m(0.5 / 3.0f64.sqrt()),
        "grid1" => IntensityModel::root_m(1, 0.6),
        "grid2" => IntensityModel::root_m(2, 0.884),
        "grid3" => IntensityModel::root_m(3, 0.926),
        "grid4" => IntensityModel::root_m(4, 0.945),
        "fft" => IntensityModel::log2_m(1.5),
        "sort" => IntensityModel::log2_m(0.9),
        "matvec" | "trisolve" => IntensityModel::constant(2.0),
        other => {
            return Err(format!(
                "unknown computation '{other}' (try: matmul, lu, grid1..grid4, fft, sort, matvec)"
            ))
        }
    })
}

/// `balance pe --c <ops/s> --io <words/s> --m <words>`: characterize a PE.
///
/// # Errors
///
/// Flag or model errors, as user-facing strings.
pub fn cmd_pe(flags: &Flags) -> Result<String, String> {
    let pe = PeSpec::new(
        OpsPerSec::new(flags.f64("c")?),
        WordsPerSec::new(flags.f64("io")?),
        Words::new(flags.u64("m")?),
    )
    .map_err(|e| e.to_string())?;
    let mut out = format!(
        "{pe}\n\nmachine balance C/IO = {:.4} op/word\n",
        pe.machine_balance()
    );
    out.push_str("\nbalanced memory per computation at this C/IO:\n");
    out.push_str(&format!(
        "{:<12} {:>16} {:>10}\n",
        "computation", "M_bal (words)", "fits?"
    ));
    for name in MODEL_NAMES {
        let model = model_by_name(name)?;
        let row = match model.balanced_memory(pe.machine_balance()) {
            Ok(m) => format!(
                "{:<12} {:>16} {:>10}\n",
                name,
                m.get(),
                if m <= pe.memory() { "yes" } else { "NO" }
            ),
            Err(BalanceError::IoBounded) => {
                format!("{:<12} {:>16} {:>10}\n", name, "impossible", "-")
            }
            Err(e) => return Err(e.to_string()),
        };
        out.push_str(&row);
    }
    Ok(out)
}

/// `balance rebalance --law <name> --alpha <f> --m <words>`: the paper's
/// question, answered.
///
/// # Errors
///
/// Flag or model errors, as user-facing strings.
pub fn cmd_rebalance(flags: &Flags) -> Result<String, String> {
    let law = flags
        .str_opt("law")
        .ok_or("missing required flag --law".to_string())?;
    let model = model_by_name(law)?;
    let alpha = Alpha::new(flags.f64("alpha")?).map_err(|e| e.to_string())?;
    let m_old = Words::new(flags.u64("m")?);
    match rebalance(&model, alpha, m_old) {
        Ok(plan) => Ok(format!("{law}: {plan}\n")),
        Err(e) => Ok(format!("{law}: {e}\n")),
    }
}

/// Parses a `--verify` flag value into a [`Verify`] policy.
///
/// # Errors
///
/// Unknown mode names, with the list of valid ones.
pub fn verify_by_name(name: &str) -> Result<Verify, String> {
    Ok(match name {
        "full" => Verify::Full,
        "freivalds" => Verify::Freivalds { rounds: 2 },
        "none" => Verify::None,
        other => Err(format!(
            "unknown verify mode '{other}' (try: full, freivalds, none)"
        ))?,
    })
}

/// Parses an `--engine` flag value into an [`Engine`], resolving `auto`
/// for a sweep of `points` memory sizes. The scaled tiers take an
/// optional `:`-suffixed parameter: `stackdist-par[:K]` runs the exact
/// segmented parallel engine on `K` threads (default: all cores), and
/// `sampled[:S]` the SHARDS-style sampled engine at rate `2^-S`
/// (default `S = 4`, rate 1/16).
///
/// # Errors
///
/// Unknown engine names or malformed parameters, with the list of valid
/// ones.
pub fn engine_by_name(name: &str, points: usize) -> Result<Engine, String> {
    let parse_param = |spec: &str, what: &str| -> Result<Option<u64>, String> {
        match spec.split_once(':') {
            None => Ok(None),
            Some((_, raw)) => raw
                .parse::<u64>()
                .map(Some)
                .map_err(|_| format!("bad {what} '{raw}' in engine '{spec}'")),
        }
    };
    Ok(match name {
        "replay" => Engine::Replay,
        "stackdist" => Engine::StackDist,
        "analytic" => Engine::Analytic,
        "auto" => Engine::auto(points),
        spec if spec == "stackdist-par" || spec.starts_with("stackdist-par:") => {
            let threads = parse_param(spec, "thread count")?;
            if threads == Some(0) {
                return Err(format!(
                    "engine '{spec}': a segmented sweep needs at least one thread \
                     (omit the suffix to use all cores)"
                ));
            }
            let threads = usize::try_from(threads.unwrap_or(0))
                .map_err(|_| format!("thread count overflows usize in '{spec}'"))?;
            Engine::StackDistPar { threads }
        }
        spec if spec == "sampled" || spec.starts_with("sampled:") => {
            let shift = parse_param(spec, "sampling shift")?.unwrap_or(4);
            let shift = u32::try_from(shift)
                .ok()
                .filter(|&s| s <= balance_machine::MAX_SAMPLE_SHIFT)
                .ok_or_else(|| {
                    format!(
                        "sampling shift in '{spec}' exceeds {}",
                        balance_machine::MAX_SAMPLE_SHIFT
                    )
                })?;
            Engine::Sampled { shift }
        }
        other => Err(format!(
            "unknown engine '{other}' \
             (try: replay, stackdist, stackdist-par[:K], sampled[:S], analytic, auto)"
        ))?,
    })
}

/// [`engine_by_name`] with the kernel in hand: `auto` resolves through
/// [`Engine::auto_for_kernel`], so kernels with a derived closed-form
/// histogram get the zero-replay analytic tier and the rest the
/// trace-length escalation. Explicit engine names parse unchanged.
///
/// # Errors
///
/// As [`engine_by_name`].
pub fn engine_by_name_for(
    name: &str,
    points: usize,
    kernel: &dyn Kernel,
    n: usize,
) -> Result<Engine, String> {
    if name == "auto" {
        Ok(Engine::auto_for_kernel(points, kernel, n))
    } else {
        engine_by_name(name, points)
    }
}

/// [`engine_by_name_for`] with the sweep's [`TrafficModel`] in hand:
/// `auto` resolves through [`Engine::auto_for_model`], so device-real
/// models land on the tagged engines (never the word-granular analytic /
/// segmented / sampled tiers). Explicit names parse unchanged — the sweep
/// itself rejects engine/model combinations it cannot price.
///
/// # Errors
///
/// As [`engine_by_name`].
pub fn engine_by_name_for_model(
    name: &str,
    points: usize,
    kernel: &dyn Kernel,
    n: usize,
    model: TrafficModel,
) -> Result<Engine, String> {
    if name == "auto" {
        Ok(Engine::auto_for_model(points, kernel, n, model))
    } else {
        engine_by_name(name, points)
    }
}

/// The kernel registry for the sweep commands, keyed by CLI name.
fn kernel_by_name(name: &str) -> Result<Box<dyn Kernel>, String> {
    Ok(match name {
        "matmul" => Box::new(MatMul),
        "lu" | "triangularization" => Box::new(Triangularization),
        "grid2" => Box::new(GridRelaxation::new(2)),
        "grid3" => Box::new(GridRelaxation::new(3)),
        "fft" => Box::new(Fft),
        "sort" => Box::new(ExternalSort),
        "matvec" => Box::new(MatVec),
        "trisolve" => Box::new(TriSolve),
        other => return Err(format!("unknown kernel '{other}'")),
    })
}

/// Parses the optional resource-budget flags (`--max-wall-secs`,
/// `--max-resident-bytes`, `--max-addresses`) into a [`Budget`], or
/// `None` when no budget flag is present.
///
/// # Errors
///
/// One-line diagnostics for unparsable or out-of-domain values.
pub fn parse_budget(flags: &Flags) -> Result<Option<Budget>, String> {
    let mut budget = Budget::unlimited();
    let mut any = false;
    if flags.str_opt("max-wall-secs").is_some() {
        let secs = flags.f64("max-wall-secs")?;
        if !secs.is_finite() || secs < 0.0 {
            return Err(format!(
                "--max-wall-secs {secs}: the wall-clock budget must be a \
                 finite non-negative number of seconds"
            ));
        }
        budget = budget.with_max_wall(std::time::Duration::from_secs_f64(secs));
        any = true;
    }
    if flags.str_opt("max-resident-bytes").is_some() {
        budget = budget.with_max_resident_bytes(flags.u64("max-resident-bytes")?);
        any = true;
    }
    if flags.str_opt("max-addresses").is_some() {
        budget = budget.with_max_addresses(flags.u64("max-addresses")?);
        any = true;
    }
    Ok(any.then_some(budget))
}

/// Parses the optional checkpoint flags (`--ckpt-dir`, `--ckpt-every`)
/// into a [`CheckpointPolicy`], or `None` when `--ckpt-dir` is absent.
///
/// # Errors
///
/// One-line diagnostics: `--ckpt-every` without a directory, a zero
/// interval, or an unparsable interval.
pub fn parse_checkpoint(flags: &Flags) -> Result<Option<CheckpointPolicy>, String> {
    let Some(dir) = flags.str_opt("ckpt-dir") else {
        if flags.str_opt("ckpt-every").is_some() {
            return Err("--ckpt-every needs --ckpt-dir to say where images go".to_string());
        }
        return Ok(None);
    };
    let every = match flags.str_opt("ckpt-every") {
        Some(_) => {
            let every = flags.u64("ckpt-every")?;
            if every == 0 {
                return Err(
                    "--ckpt-every 0: the checkpoint interval must be at least 1 address"
                        .to_string(),
                );
            }
            every
        }
        None => DEFAULT_CHECKPOINT_EVERY,
    };
    Ok(Some(CheckpointPolicy::every(dir, every)))
}

/// `balance sweep --kernel <name> --n <size> [--seed <u64>]
/// [--verify full|freivalds|none] [--engine replay|stackdist|auto]
/// [--line-words <L>] [--max-wall-secs <s>] [--max-resident-bytes <b>]
/// [--max-addresses <a>] [--ckpt-dir <path> [--ckpt-every <addrs>]]`: run
/// a real measured sweep (in parallel across cores) and fit the law.
///
/// Without `--engine` the sweep runs the kernel's *decomposition scheme*
/// once per memory size (the §3 measurement). With `--engine` it measures
/// the **cache-model** curve instead — the kernel's canonical trace
/// through an LRU of each capacity — where `stackdist` answers the whole
/// sweep from a single replay and `replay` is the per-capacity reference
/// engine (bit-identical results, different wall-clock).
///
/// The budget and checkpoint flags apply to the cache-model engines: a
/// tripped budget degrades the engine down the sampling ladder (reported
/// on a `provenance:` line), and a checkpoint directory makes the replay
/// resumable after a kill.
///
/// `--line-words L` (cache-model engines only) makes the measurement
/// device-real: the cache moves whole `L`-word lines, and dirty lines
/// are ledgered as separate write-back traffic alongside the read
/// stream. `L` must be a positive power of two; the tagged engines
/// (`replay`, `stackdist`) price this model, and `auto` resolves within
/// them.
///
/// # Errors
///
/// Flag, kernel, or fitting errors, as user-facing strings.
pub fn cmd_sweep(flags: &Flags) -> Result<String, String> {
    let name = flags
        .str_opt("kernel")
        .ok_or("missing required flag --kernel".to_string())?;
    let n = flags.u64("n")? as usize;
    let seed = flags.u64("seed").unwrap_or(42);
    let verify = match flags.str_opt("verify") {
        Some(mode) => verify_by_name(mode)?,
        Option::None => Verify::auto(n),
    };
    let budget = parse_budget(flags)?;
    let checkpoint = parse_checkpoint(flags)?;
    if (budget.is_some() || checkpoint.is_some()) && flags.str_opt("engine").is_none() {
        return Err(
            "budget/checkpoint flags apply to the cache-model engines: \
             add --engine (e.g. --engine stackdist)"
                .to_string(),
        );
    }
    let line_words = parse_line_words(flags)?;
    if line_words.is_some() && flags.str_opt("engine").is_none() {
        return Err(
            "--line-words prices the cache-model engines: \
             add --engine (e.g. --engine stackdist)"
                .to_string(),
        );
    }
    let model = line_words.map_or(TrafficModel::WORD, TrafficModel::device);
    let kernel = kernel_by_name(name)?;
    let mut cfg = SweepConfig::pow2(n, 5, 12, seed)
        .with_verify(verify)
        .with_traffic(model);
    if let Some(budget) = budget {
        cfg = cfg.with_budget(budget);
    }
    if let Some(policy) = checkpoint {
        cfg = cfg.with_checkpoint(policy);
    }
    let (result, header) = match flags.str_opt("engine") {
        Some(engine) => {
            let engine =
                engine_by_name_for_model(engine, cfg.memories.len(), kernel.as_ref(), n, model)?;
            let result = capacity_sweep_par(kernel.as_ref(), &cfg.clone().with_engine(engine))
                .map_err(|e| e.to_string())?;
            let mut header = format!("cache-model capacity sweep ({engine:?} engine)\n");
            if let Some(lw) = line_words {
                header.push_str(&format!(
                    "traffic model: {lw}-word lines, dirty write-backs ledgered\n"
                ));
            }
            if let Some(prov) = &result.provenance {
                header.push_str(&format!("provenance: {}\n", prov.describe()));
            }
            (result, header)
        }
        Option::None => (
            intensity_sweep_par(kernel.as_ref(), &cfg).map_err(|e| e.to_string())?,
            String::new(),
        ),
    };
    let mut out = header;
    if line_words.is_some() {
        out.push_str(&format!(
            "{:>10} {:>14} {:>14} {:>12} {:>10}\n",
            "M (words)", "C_comp", "C_read", "C_wb", "ratio"
        ));
    } else {
        out.push_str(&format!(
            "{:>10} {:>14} {:>14} {:>10}\n",
            "M (words)", "C_comp", "C_io", "ratio"
        ));
    }
    for run in &result.runs {
        if line_words.is_some() {
            out.push_str(&format!(
                "{:>10} {:>14} {:>14} {:>12} {:>10.3}\n",
                run.m,
                run.execution.cost.comp_ops(),
                run.execution.cost.read_at(0).unwrap_or(0),
                run.execution.cost.writeback_at(0).unwrap_or(0),
                run.intensity()
            ));
        } else {
            out.push_str(&format!(
                "{:>10} {:>14} {:>14} {:>10.3}\n",
                run.m,
                run.execution.cost.comp_ops(),
                run.execution.cost.io_words(),
                run.intensity()
            ));
        }
    }
    let fit = result.fit().map_err(|e| e.to_string())?;
    out.push_str(&format!(
        "\nfitted: {}\ngrowth rule: {}\n",
        fit.best,
        fit.best.growth_law()
    ));
    Ok(out)
}

/// Parses a `--levels CAP:BW[:LAT[:LINE[:WBW]]][,...]` hierarchy
/// description (innermost level first; capacities in words, bandwidths in
/// words/s, optional per-word access latencies in seconds, optional
/// device-real fields: LINE is the level's transfer line in words — a
/// power of two, 1 = word-granular — and WBW a separate write-back
/// bandwidth in words/s for asymmetric devices like flash).
///
/// # Errors
///
/// User-facing messages for malformed items, zero capacities, non-positive
/// bandwidths, negative or non-finite latencies, non-power-of-two line
/// sizes, bad write bandwidths, and capacities that do not grow outward.
pub fn parse_levels(s: &str) -> Result<HierarchySpec, String> {
    let mut levels = Vec::new();
    for (i, item) in s.split(',').enumerate() {
        let item = item.trim();
        let fields: Vec<&str> = item.split(':').map(str::trim).collect();
        if !(2..=5).contains(&fields.len()) {
            return Err(format!(
                "level {}: expected CAP:BW[:LAT[:LINE[:WBW]]], got '{item}' \
                 (e.g. --levels 1024:1e8,65536:1e7:2e-7:8:5e6)",
                i + 1
            ));
        }
        let cap: u64 = fields[0]
            .parse()
            .map_err(|e| format!("level {}: capacity '{}': {e}", i + 1, fields[0]))?;
        let bw: f64 = fields[1]
            .parse()
            .map_err(|e| format!("level {}: bandwidth '{}': {e}", i + 1, fields[1]))?;
        let mut level = LevelSpec::new(Words::new(cap), WordsPerSec::new(bw))
            .map_err(|e| format!("level {}: {e}", i + 1))?;
        if let Some(lat) = fields.get(2) {
            let lat: f64 = lat
                .parse()
                .map_err(|e| format!("level {}: latency '{lat}': {e}", i + 1))?;
            level = level
                .with_latency(Seconds::new(lat))
                .map_err(|e| format!("level {}: {e}", i + 1))?;
        }
        if let Some(line) = fields.get(3) {
            let line: u64 = line
                .parse()
                .map_err(|e| format!("level {}: line size '{line}': {e}", i + 1))?;
            level = level
                .with_line_words(line)
                .map_err(|e| format!("level {}: {e}", i + 1))?;
        }
        if let Some(wbw) = fields.get(4) {
            let wbw: f64 = wbw
                .parse()
                .map_err(|e| format!("level {}: write bandwidth '{wbw}': {e}", i + 1))?;
            level = level
                .with_write_bandwidth(WordsPerSec::new(wbw))
                .map_err(|e| format!("level {}: {e}", i + 1))?;
        }
        levels.push(level);
    }
    HierarchySpec::new(levels).map_err(|e| e.to_string())
}

/// Parses the optional `--line-words` flag: the sweep-wide transfer line
/// in words, turning the measurement device-real (line-granular reads
/// plus a dirty-write-back ledger). `None` when absent; `1` is valid and
/// means "word-granular lines, write-backs still ledgered".
///
/// # Errors
///
/// A one-line diagnostic for zero, non-power-of-two, or unparsable
/// values.
pub fn parse_line_words(flags: &Flags) -> Result<Option<u64>, String> {
    if flags.str_opt("line-words").is_none() {
        return Ok(None);
    }
    let lw = flags.u64("line-words")?;
    if lw == 0 || !lw.is_power_of_two() {
        return Err(format!(
            "--line-words {lw}: the transfer line must be a positive power of \
             two words (1 keeps word-granular lines with the write-back ledger)"
        ));
    }
    Ok(Some(lw))
}

/// `balance hierarchy --levels CAP:BW[:LAT[:LINE[:WBW]]][,...]
/// [--c <ops/s>] [--kernel <name> [--n <size>] [--line-words <L>]
/// [--engine replay|stackdist|auto]]`: the balance law per level of a
/// memory hierarchy.
///
/// Prints each boundary's ridge point, then — for each law in
/// [`MODEL_NAMES`] — the attainable throughput
/// `min(C, min_i r(M_i)·IO_i)`, the binding level, and the balanced
/// capacity each level would need to reach its own ridge.
///
/// With `--kernel` it appends a **measured** section: the kernel's
/// canonical trace driven through the given ladder (all levels
/// cache-managed), reporting each boundary's word traffic and measured
/// per-level intensity. The default `stackdist` engine reads every
/// boundary off one replay; `replay` runs the actual chained ladder
/// (bit-identical). A LINE/WBW annotation on any level — or an explicit
/// `--line-words` — switches the measurement to the device-real model:
/// line-granular transfers with a dirty-write-back ledger per boundary
/// (ladders mixing line sizes need the `replay` engine, picked
/// automatically when no `--engine` is given).
///
/// # Errors
///
/// Flag, parsing, or model errors, as user-facing strings.
pub fn cmd_hierarchy(flags: &Flags) -> Result<String, String> {
    let spec = parse_levels(
        flags
            .str_opt("levels")
            .ok_or("missing required flag --levels (CAP:BW[:LAT][,...])".to_string())?,
    )?;
    let c = match flags.str_opt("c") {
        Some(_) => flags.f64("c")?,
        None => 1.0e9,
    };
    let roofline =
        HierarchicalRoofline::new(OpsPerSec::new(c), &spec).map_err(|e| e.to_string())?;

    let mut out = format!("machine: C = {c:.3e} op/s over {} level(s)\n\n", spec.depth());
    out.push_str(&format!(
        "{:<6} {:>14} {:>14} {:>14}\n",
        "level", "M_i (words)", "IO_i (w/s)", "ridge C/IO_i"
    ));
    for (i, level) in spec.levels().iter().enumerate() {
        out.push_str(&format!(
            "L{:<5} {:>14} {:>14.3e} {:>14.3}\n",
            i + 1,
            level.capacity().get(),
            level.bandwidth().get(),
            roofline.ridge_at(i)
        ));
    }

    out.push_str(&format!(
        "\n{:<12} {:>14} {:>7}  {}\n",
        "computation", "attainable", "binds", "M_bal per level (words)"
    ));
    for name in MODEL_NAMES {
        let model = model_by_name(name)?;
        let ai: Vec<f64> = spec
            .levels()
            .iter()
            .map(|l| model.eval_words(l.capacity()))
            .collect();
        let binds = match roofline.binding_level(&ai) {
            Some(level) => format!("L{}", level + 1),
            None => "roof".to_string(),
        };
        let m_bal: Vec<String> = (0..spec.depth())
            .map(|i| match roofline.balanced_memory_at(i, &model) {
                Ok(m) => m.get().to_string(),
                Err(BalanceError::IoBounded) => "impossible".to_string(),
                Err(e) => e.to_string(),
            })
            .collect();
        out.push_str(&format!(
            "{:<12} {:>14.3e} {:>7}  [{}]\n",
            name,
            roofline.attainable(&ai),
            binds,
            m_bal.join(", ")
        ));
    }

    // Optional measured section: the kernel's canonical trace through
    // this ladder, every boundary read off one replay.
    if let Some(kname) = flags.str_opt("kernel") {
        let kernel = kernel_by_name(kname)?;
        let n = match flags.str_opt("n") {
            Some(_) => flags.u64("n")? as usize,
            Option::None => 32,
        };
        // Device-real measurement when any level is annotated (LINE/WBW
        // fields) or --line-words asks for it; the flag sets the sweep's
        // line, otherwise the innermost level's annotation does.
        let line_words = parse_line_words(flags)?;
        let model_line = line_words.unwrap_or_else(|| spec.level(0).line_words());
        let device = line_words.is_some() || spec.is_device_real();
        let model = if device {
            TrafficModel::device(model_line)
        } else {
            TrafficModel::WORD
        };
        // Outer levels without their own LINE annotation inherit the
        // sweep's line; the one-pass engine needs them all equal.
        let uniform = spec.levels()[1..]
            .iter()
            .all(|l| l.line_words() <= 1 || l.line_words() == model_line);
        // `auto`'s point count here is the number of capacities read off
        // the histogram — the ladder depth, not the single sweep point
        // (a depth-d replay costs ~d LRU updates per address, so shallow
        // ladders favor the plain replay and deep ones the histogram).
        let engine = match flags.str_opt("engine") {
            Some(e) => engine_by_name_for_model(e, spec.depth(), kernel.as_ref(), n, model)?,
            Option::None if device && !uniform => Engine::Replay,
            Option::None => Engine::StackDist,
        };
        let cfg = SweepConfig {
            n,
            memories: vec![spec.local_capacity_words()],
            seed: 42,
            verify: Verify::None,
            engine,
            ..SweepConfig::default()
        }
        .with_traffic(model);
        let outer: Vec<LevelSpec> = spec.levels()[1..].to_vec();
        let result = hierarchy_capacity_sweep(kernel.as_ref(), &cfg, &outer)
            .map_err(|e| e.to_string())?;
        let run = result
            .runs
            .first()
            .ok_or_else(|| "no measurable capacity point".to_string())?;
        if device {
            out.push_str(&format!(
                "\nmeasured ({kname} canonical trace, n = {n}, {engine:?} engine, \
                 {model_line}-word lines, write-backs ledgered):\n\
                 {:<6} {:>14} {:>14} {:>14}\n",
                "level", "read_i (words)", "wb_i (words)", "r_i (op/word)"
            ));
            for i in 0..run.execution.cost.level_count() {
                out.push_str(&format!(
                    "L{:<5} {:>14} {:>14} {:>14.3}\n",
                    i + 1,
                    run.execution.cost.read_at(i).unwrap_or(0),
                    run.execution.cost.writeback_at(i).unwrap_or(0),
                    run.execution.cost.intensity_at(i).unwrap_or(0.0)
                ));
            }
        } else {
            out.push_str(&format!(
                "\nmeasured ({kname} canonical trace, n = {n}, {engine:?} engine, one replay):\n\
                 {:<6} {:>14} {:>14}\n",
                "level", "io_i (words)", "r_i (op/word)"
            ));
            for i in 0..run.execution.cost.level_count() {
                out.push_str(&format!(
                    "L{:<5} {:>14} {:>14.3}\n",
                    i + 1,
                    run.execution.cost.io_at(i).unwrap_or(0),
                    run.execution.cost.intensity_at(i).unwrap_or(0.0)
                ));
            }
        }
    }
    Ok(out)
}

/// `balance parallel --pes P --topology linear|mesh [--kernel
/// matmul|transpose|grid2] [--n <size>] [--seed <u64>]`: run a kernel on a
/// measured P-PE machine across a per-PE memory sweep.
///
/// The cell is the §5 Warp PE (10 Mop/s, 20 Mword/s, 64 K words); for a
/// mesh, `P` must be a perfect square (`side = √P`). Each row reports the
/// machine's external and communication traffic separately, the balance
/// verdict against the aggregate machine, and which term of the parallel
/// roofline (compute roof / external I/O / bisection) binds.
///
/// # Errors
///
/// Flag, topology, kernel, or run errors, as user-facing strings.
pub fn cmd_parallel(flags: &Flags) -> Result<String, String> {
    let pes = flags.u64("pes")?;
    let kind = TopologyKind::parse(
        flags
            .str_opt("topology")
            .ok_or("missing required flag --topology (linear | mesh)".to_string())?,
    )?;
    let topology = match kind {
        TopologyKind::Linear => Topology::linear(pes),
        TopologyKind::Mesh => {
            let side = pes.isqrt();
            if side * side != pes {
                // Suggest the nearest non-degenerate square.
                let next = (side + 1) * (side + 1);
                return Err(format!(
                    "--pes {pes}: a mesh needs a square PE count (e.g. {})",
                    if side < 2 { 4 } else { next }
                ));
            }
            Topology::mesh(side)
        }
    }
    .map_err(|e| e.to_string())?;
    let kernel: Box<dyn ParallelKernel> = match flags.str_opt("kernel").unwrap_or("matmul") {
        "matmul" => Box::new(ParMatMul),
        "transpose" => Box::new(ParTranspose),
        "grid2" | "grid2d" => Box::new(ParGrid2d),
        other => return Err(format!("unknown parallel kernel '{other}' (try: matmul, transpose, grid2)")),
    };
    let default_n = if kernel.name() == "grid2d" { 8 } else { 32 };
    let n = match flags.str_opt("n") {
        Some(_) => flags.u64("n")? as usize,
        None => default_n,
    };
    let seed = match flags.str_opt("seed") {
        Some(_) => flags.u64("seed")?,
        None => 42,
    };

    let cell = balance_parallel::warp_cell();
    let agg = topology.aggregate(cell).map_err(|e| e.to_string())?;
    let roofline = ParallelRoofline::new(
        agg.comp_bw(),
        agg.io_bw(),
        WordsPerSec::new(cell.io_bw().get() * topology.bisection_links() as f64),
    )
    .map_err(|e| e.to_string())?;

    let cfg = ParallelSweepConfig::new(
        n,
        vec![topology],
        (5..=12).map(|k| 1usize << k).collect(),
        seed,
    );
    let points = parallel_sweep_par(kernel.as_ref(), &cfg).map_err(|e| e.to_string())?;
    if points.is_empty() {
        return Err(format!(
            "no per-PE memory in the sweep supports {} at n = {n}",
            kernel.name()
        ));
    }

    let mut out = format!(
        "{} on {topology}: aggregate C = {:.3e} op/s, IO_ext = {:.3e} word/s \
         (ridge {:.2}), BW_bis = {:.3e} word/s (ridge {:.2})\n\n",
        kernel.name(),
        agg.comp_bw().get(),
        agg.io_bw().get(),
        roofline.ridge_external(),
        roofline.bisection_bw().get(),
        roofline.ridge_bisection(),
    );
    out.push_str(&format!(
        "{:>8} {:>12} {:>12} {:>8} {:>8} {:>12} {:>10}  {}\n",
        "M/PE", "ext words", "comm words", "r_ext", "r_comm", "attainable", "binds", "verdict"
    ));
    for pt in &points {
        let (r_ext, r_comm) = (
            pt.run.external_intensity(),
            pt.run.execution.comm_intensity(),
        );
        let verdict = pt
            .run
            .execution
            .balance_state(cell, 0.05)
            .map_err(|e| e.to_string())?;
        out.push_str(&format!(
            "{:>8} {:>12} {:>12} {:>8.2} {:>8} {:>12.3e} {:>10}  {}\n",
            pt.per_pe_m,
            pt.run.execution.external_words(),
            pt.run.execution.comm_words,
            r_ext,
            if r_comm.is_finite() {
                format!("{r_comm:.2}")
            } else {
                "-".to_string()
            },
            roofline.attainable(r_ext, r_comm),
            roofline.binding(r_ext, r_comm).to_string(),
            verdict,
        ));
    }
    Ok(out)
}

/// `balance warp`: the §5 case study.
#[must_use]
pub fn cmd_warp() -> String {
    balance_parallel::case_study(&balance_parallel::warp::default_computations())
        .unwrap_or_else(|e| panic!("constants valid: {e}"))
        .to_string()
}

/// Top-level dispatch; returns the output text or a usage error.
///
/// # Errors
///
/// User-facing messages for unknown commands or bad flags.
pub fn dispatch(args: &[String]) -> Result<String, String> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(usage());
    };
    if cmd == "store" {
        // `store` has positional subcommands (build | fsck) before its flags.
        return crate::storecli::cmd_store(rest);
    }
    let flags = Flags::parse(rest)?;
    match cmd.as_str() {
        "serve" => crate::storecli::cmd_serve(&flags),
        "pe" => cmd_pe(&flags),
        "rebalance" => cmd_rebalance(&flags),
        "sweep" => cmd_sweep(&flags),
        "hierarchy" => cmd_hierarchy(&flags),
        "parallel" => cmd_parallel(&flags),
        "warp" => Ok(cmd_warp()),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(format!("unknown command '{other}'\n\n{}", usage())),
    }
}

/// The usage string.
#[must_use]
pub fn usage() -> String {
    "balance — explore Kung's (1985) balance model

USAGE:
  balance pe --c <ops/s> --io <words/s> --m <words>
      Characterize a PE: machine balance + balanced memory per computation.
  balance rebalance --law <matmul|lu|grid1..grid4|fft|sort|matvec> --alpha <f> --m <words>
      The paper's question: how much memory restores balance after C/IO grows α-fold?
  balance sweep --kernel <matmul|lu|grid2|grid3|fft|sort|matvec|trisolve> --n <size> [--seed <u64>] [--verify full|freivalds|none] [--engine replay|stackdist|stackdist-par[:K]|sampled[:S]|analytic|auto]
      Run the instrumented kernel across a memory sweep (parallel across
      cores; default verification: full up to n=64, anchored Freivalds
      beyond) and fit the law. With --engine, measure the cache-model
      curve (canonical trace through an LRU per capacity) instead:
      stackdist answers the whole sweep from ONE replay, stackdist-par:K
      splits that replay across K threads (exact, bit-identical; K
      defaults to all cores), sampled:S hash-samples addresses at rate
      2^-S (approximate, default S=4), analytic builds the kernel's
      closed-form histogram with ZERO replay (exact; affine kernels only
      — auto picks it up wherever it exists), and replay is the
      per-capacity reference engine. Robust-run flags (cache-model engines only):
      --max-wall-secs <s>, --max-resident-bytes <b>, --max-addresses <a>
      set a resource budget — a tripped budget degrades the engine down
      the sampling ladder and reports the substitution on a provenance
      line; --ckpt-dir <path> [--ckpt-every <addrs>] checkpoints the
      replay so a killed run resumes from the last image. --line-words L
      (cache-model engines only) makes the measurement device-real: the
      cache moves whole L-word lines (L a power of two) and dirty lines
      are ledgered as separate write-back traffic next to the reads.
  balance hierarchy --levels CAP:BW[:LAT[:LINE[:WBW]]][,...] [--c <ops/s>] [--kernel <name> [--n <size>] [--line-words <L>] [--engine replay|stackdist|stackdist-par[:K]|sampled[:S]|analytic|auto]]
      The balance law per level of a memory hierarchy (innermost level
      first): per-boundary ridges, binding level, and balanced capacity
      per level for each of the paper's intensity laws. LAT is the level's
      per-word access latency in seconds; it lowers the level's effective
      bandwidth and therefore raises its ridge. LINE gives the level its
      own transfer line in words (a power of two; 1 = word-granular) and
      WBW a separate write-back bandwidth in words/s for asymmetric
      devices — either annotation (or --line-words) switches the measured
      section to the device-real model, with a dirty-write-back ledger
      per boundary. With --kernel, append the measured per-boundary
      traffic of the kernel's canonical trace through this ladder, read
      off one stack-distance replay (mixed-line ladders replay the actual
      chained ladder instead).
  balance parallel --pes <P> --topology <linear|mesh> [--kernel matmul|transpose|grid2] [--n <size>] [--seed <u64>]
      Run a kernel on a measured P-PE machine (Warp cells) across a per-PE
      memory sweep: external vs communication traffic, the balance verdict
      against the aggregate machine, and the binding parallel-roofline
      term. A mesh needs a square PE count.
  balance warp
      The §5 Warp machine case study.
  balance store build --dir <path> [--kernels a,b,...] [--grid N1,N2,...] [--line-words <L>] [--max-wall-secs <s>] [--max-resident-bytes <b>] [--max-addresses <a>]
      Precompute a kernel registry × size grid of capacity (or, with
      --line-words, device-real traffic) profiles into a crash-safe,
      content-addressed store of versioned, checksummed KBCP images.
      Resumable: grid points whose entry already validates are skipped,
      so a killed build completes only the remainder on re-run.
  balance store fsck --dir <path>
      Scrub a profile store: quarantine corrupt, truncated, or
      stale-version images, adopt valid orphans, rewrite the manifest.
  balance serve --store <path> [--batch FILE|-] [--line-words <L>] [--peak <op/s>] [budget flags]
      Answer batch/REPL what-if queries from the store through the
      self-healing service (one query per line; --batch - or no --batch
      reads stdin): 'io K N M' (boundary words at capacity M),
      'intensity K N M' (op/word), 'balance K N R' (smallest M reaching
      R op/word), 'binding K N CAP:BW[,...]' (binding level of a ladder
      under --peak). Hits serve from the store; misses and quarantined
      entries are recomputed down the repair ladder and re-persisted.
      Every answer reports its provenance (hit vs repaired, engine,
      exactness); exact-only queries (balance, binding) refuse sampled
      artifacts.
"
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| (*x).to_string()).collect()
    }

    #[test]
    fn flags_parse_pairs() {
        let f = Flags::parse(&args(&["--alpha", "2.5", "--m", "4096"])).unwrap();
        assert_eq!(f.f64("alpha").unwrap(), 2.5);
        assert_eq!(f.u64("m").unwrap(), 4096);
        assert!(f.f64("missing").is_err());
    }

    #[test]
    fn flags_reject_malformed_input() {
        assert!(Flags::parse(&args(&["alpha", "2"])).is_err());
        assert!(Flags::parse(&args(&["--alpha"])).is_err());
        let f = Flags::parse(&args(&["--alpha", "abc"])).unwrap();
        assert!(f.f64("alpha").is_err());
    }

    #[test]
    fn model_registry_matches_paper() {
        assert!(matches!(
            model_by_name("matmul").unwrap(),
            IntensityModel::Power { .. }
        ));
        assert!(matches!(
            model_by_name("fft").unwrap(),
            IntensityModel::Log2 { .. }
        ));
        assert!(matches!(
            model_by_name("matvec").unwrap(),
            IntensityModel::Constant { .. }
        ));
        assert!(model_by_name("nonsense").is_err());
    }

    #[test]
    fn pe_command_renders_table() {
        let f = Flags::parse(&args(&["--c", "1e8", "--io", "1e7", "--m", "4096"])).unwrap();
        let out = cmd_pe(&f).unwrap();
        assert!(out.contains("machine balance C/IO = 10"));
        assert!(out.contains("matmul"));
        assert!(out.contains("impossible")); // matvec row
    }

    #[test]
    fn rebalance_command_answers_and_refuses() {
        let f = Flags::parse(&args(&["--law", "matmul", "--alpha", "2", "--m", "100"])).unwrap();
        let out = cmd_rebalance(&f).unwrap();
        assert!(out.contains("400 words"), "{out}");
        let f = Flags::parse(&args(&["--law", "matvec", "--alpha", "2", "--m", "100"])).unwrap();
        let out = cmd_rebalance(&f).unwrap();
        assert!(out.contains("I/O-bounded"));
    }

    #[test]
    fn sweep_command_runs_a_real_kernel() {
        let f = Flags::parse(&args(&["--kernel", "matmul", "--n", "24"])).unwrap();
        let out = cmd_sweep(&f).unwrap();
        assert!(out.contains("fitted:"));
        assert!(out.contains("growth rule:"));
    }

    #[test]
    fn sweep_verify_modes_measure_identically() {
        let full = cmd_sweep(
            &Flags::parse(&args(&["--kernel", "matmul", "--n", "24", "--verify", "full"]))
                .unwrap(),
        )
        .unwrap();
        let cheap = cmd_sweep(
            &Flags::parse(&args(&[
                "--kernel", "matmul", "--n", "24", "--verify", "freivalds",
            ]))
            .unwrap(),
        )
        .unwrap();
        // Verification policy changes checking cost, never the measurement.
        assert_eq!(full, cheap);
        let f = Flags::parse(&args(&["--kernel", "matmul", "--n", "8", "--verify", "bogus"]))
            .unwrap();
        assert!(cmd_sweep(&f).is_err());
    }

    #[test]
    fn sweep_engine_flag_runs_the_capacity_engines_bit_identically() {
        let base = &["--kernel", "matmul", "--n", "16"];
        let onepass = cmd_sweep(
            &Flags::parse(&args(&[base, &["--engine", "stackdist"][..]].concat())).unwrap(),
        )
        .unwrap();
        let replay = cmd_sweep(
            &Flags::parse(&args(&[base, &["--engine", "replay"][..]].concat())).unwrap(),
        )
        .unwrap();
        // Same numbers from both engines; only the header names the engine.
        assert!(onepass.contains("StackDist"), "{onepass}");
        assert!(replay.contains("Replay"), "{replay}");
        let strip = |s: &str| s.lines().skip(1).collect::<Vec<_>>().join("\n");
        assert_eq!(strip(&onepass), strip(&replay));
        // And the cache-model curve differs from the scheme sweep.
        let scheme = cmd_sweep(&Flags::parse(&args(base)).unwrap()).unwrap();
        assert_ne!(strip(&onepass), scheme);
        // auto resolves; bogus engines are rejected.
        assert!(cmd_sweep(
            &Flags::parse(&args(&[base, &["--engine", "auto"][..]].concat())).unwrap()
        )
        .is_ok());
        assert!(cmd_sweep(
            &Flags::parse(&args(&[base, &["--engine", "bogus"][..]].concat())).unwrap()
        )
        .is_err());
    }

    #[test]
    fn engine_registry_parses_all_modes() {
        assert_eq!(engine_by_name("replay", 16).unwrap(), Engine::Replay);
        assert_eq!(engine_by_name("stackdist", 1).unwrap(), Engine::StackDist);
        assert_eq!(engine_by_name("auto", 3).unwrap(), Engine::Replay);
        assert_eq!(engine_by_name("auto", 4).unwrap(), Engine::StackDist);
        assert!(engine_by_name("onepass", 4).is_err());
        // The scaled tiers, with and without their parameters.
        assert_eq!(
            engine_by_name("stackdist-par", 4).unwrap(),
            Engine::StackDistPar { threads: 0 }
        );
        assert_eq!(
            engine_by_name("stackdist-par:6", 4).unwrap(),
            Engine::StackDistPar { threads: 6 }
        );
        assert_eq!(engine_by_name("sampled", 4).unwrap(), Engine::Sampled { shift: 4 });
        assert_eq!(engine_by_name("sampled:7", 4).unwrap(), Engine::Sampled { shift: 7 });
        assert_eq!(engine_by_name("sampled:0", 4).unwrap(), Engine::Sampled { shift: 0 });
        assert!(engine_by_name("stackdist-par:x", 4).is_err());
        assert!(engine_by_name("sampled:99", 4).is_err(), "shift beyond MAX rejected");
        assert!(engine_by_name("sampled:-3", 4).is_err());
        // The zero-replay tier parses, takes no parameter, and is listed
        // in the unknown-engine diagnostic.
        assert_eq!(engine_by_name("analytic", 4).unwrap(), Engine::Analytic);
        assert!(engine_by_name("analytic:2", 4).is_err());
        let err = engine_by_name("nope", 4).unwrap_err();
        assert!(err.contains("analytic"), "{err}");
    }

    #[test]
    fn engine_auto_resolution_is_kernel_aware() {
        // With the kernel in hand, auto grows the analytic tier for
        // kernels that derive a histogram, and falls back for the rest.
        assert_eq!(
            engine_by_name_for("auto", 16, &MatMul, 8).unwrap(),
            Engine::Analytic
        );
        assert_eq!(
            engine_by_name_for("auto", 16, &balance_kernels::fft::Fft, 8).unwrap(),
            Engine::StackDist
        );
        // Explicit names bypass the kernel entirely.
        assert_eq!(
            engine_by_name_for("replay", 16, &MatMul, 8).unwrap(),
            Engine::Replay
        );
        assert!(engine_by_name_for("bogus", 16, &MatMul, 8).is_err());
    }

    #[test]
    fn analytic_engine_cli_end_to_end() {
        let base = &["--kernel", "matmul", "--n", "12"];
        let analytic = cmd_sweep(
            &Flags::parse(&args(&[base, &["--engine", "analytic"][..]].concat())).unwrap(),
        )
        .unwrap();
        assert!(analytic.contains("Analytic"), "{analytic}");
        // Same numbers as the one-replay engine, zero replays.
        let onepass = cmd_sweep(
            &Flags::parse(&args(&[base, &["--engine", "stackdist"][..]].concat())).unwrap(),
        )
        .unwrap();
        let strip = |s: &str| s.lines().skip(1).collect::<Vec<_>>().join("\n");
        assert_eq!(strip(&analytic), strip(&onepass));
        // auto now lands on the analytic tier for covered kernels...
        let auto = cmd_sweep(
            &Flags::parse(&args(&[base, &["--engine", "auto"][..]].concat())).unwrap(),
        )
        .unwrap();
        assert!(auto.contains("Analytic"), "{auto}");
        // ...but an explicit request against an uncovered kernel is a
        // clear one-line error naming the kernel, not a silent fallback.
        let err = cmd_sweep(
            &Flags::parse(&args(&[
                &["--kernel", "fft", "--n", "8"][..],
                &["--engine", "analytic"][..],
            ]
            .concat()))
            .unwrap(),
        )
        .unwrap_err();
        assert!(err.contains("fft"), "{err}");
        assert!(err.contains("no analytic profile"), "{err}");
        // Unknown kernels keep their own diagnostic.
        let err = cmd_sweep(
            &Flags::parse(&args(&["--kernel", "quicksort", "--n", "8", "--engine", "analytic"]))
                .unwrap(),
        )
        .unwrap_err();
        assert!(err.contains("unknown kernel"), "{err}");
    }

    #[test]
    fn engine_registry_rejects_malformed_specs_with_one_line_diagnostics() {
        let err = engine_by_name("sampled:banana", 4).unwrap_err();
        assert!(err.contains("banana"), "{err}");
        assert!(!err.contains('\n'), "diagnostic must be one line: {err:?}");
        // An explicit zero thread count is malformed; bare stackdist-par
        // still means "all cores".
        let err = engine_by_name("stackdist-par:0", 4).unwrap_err();
        assert!(err.contains("at least one thread"), "{err}");
        assert!(!err.contains('\n'), "diagnostic must be one line: {err:?}");
        assert_eq!(
            engine_by_name("stackdist-par", 4).unwrap(),
            Engine::StackDistPar { threads: 0 }
        );
    }

    #[test]
    fn sweep_budget_and_checkpoint_flags_reject_malformed_values() {
        let base = &["--kernel", "matmul", "--n", "8", "--engine", "stackdist"];
        let run = |extra: &[&str]| cmd_sweep(&Flags::parse(&args(&[base, extra].concat())).unwrap());
        assert!(run(&["--max-wall-secs", "banana"]).is_err());
        let err = run(&["--max-wall-secs", "-3"]).unwrap_err();
        assert!(err.contains("non-negative"), "{err}");
        assert!(run(&["--max-resident-bytes", "lots"]).is_err());
        assert!(run(&["--max-addresses", "-1"]).is_err());
        let err = run(&["--ckpt-every", "1024"]).unwrap_err();
        assert!(err.contains("--ckpt-dir"), "{err}");
        let err = run(&["--ckpt-dir", "/tmp", "--ckpt-every", "0"]).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        let err = run(&["--ckpt-dir", "/tmp", "--ckpt-every", "soon"]).unwrap_err();
        assert!(err.contains("--ckpt-every"), "{err}");
        // Budget/checkpoint flags without an engine are a usage error, not
        // a silent no-op.
        let err = cmd_sweep(
            &Flags::parse(&args(&["--kernel", "matmul", "--n", "8", "--max-addresses", "10"]))
                .unwrap(),
        )
        .unwrap_err();
        assert!(err.contains("--engine"), "{err}");
    }

    #[test]
    fn sweep_budget_flags_degrade_and_report_provenance() {
        let out = cmd_sweep(
            &Flags::parse(&args(&[
                "--kernel",
                "matmul",
                "--n",
                "16",
                "--engine",
                "stackdist",
                "--max-resident-bytes",
                "1024",
            ]))
            .unwrap(),
        )
        .unwrap();
        assert!(out.contains("provenance: degraded"), "{out}");
        assert!(out.contains("sampled"), "{out}");
        assert!(out.contains("fitted:"), "degraded sweep still fits a law: {out}");
    }

    #[test]
    fn sweep_checkpoint_flags_checkpoint_and_report_provenance() {
        let dir = std::env::temp_dir().join(format!("balance-cli-ckpt-{}", std::process::id()));
        let out = cmd_sweep(
            &Flags::parse(&args(&[
                "--kernel",
                "matmul",
                "--n",
                "16",
                "--engine",
                "stackdist",
                "--ckpt-dir",
                dir.to_str().unwrap(),
                "--ckpt-every",
                "500",
            ]))
            .unwrap(),
        )
        .unwrap();
        assert!(out.contains("provenance: as requested (stackdist)"), "{out}");
        assert!(out.contains("checkpoint(s)"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_scaled_engines_run_through_the_cli() {
        let base = &["--kernel", "matmul", "--n", "16"];
        let onepass = cmd_sweep(
            &Flags::parse(&args(&[base, &["--engine", "stackdist"][..]].concat())).unwrap(),
        )
        .unwrap();
        let strip = |s: &str| s.lines().skip(1).collect::<Vec<_>>().join("\n");
        // Segmented parallel: same numbers as the serial one-pass engine.
        let seg = cmd_sweep(
            &Flags::parse(&args(&[base, &["--engine", "stackdist-par:3"][..]].concat()))
                .unwrap(),
        )
        .unwrap();
        assert!(seg.contains("StackDistPar"), "{seg}");
        assert_eq!(strip(&onepass), strip(&seg));
        // Sampled at shift 0 degenerates to exact; nonzero shift runs.
        let exact0 = cmd_sweep(
            &Flags::parse(&args(&[base, &["--engine", "sampled:0"][..]].concat())).unwrap(),
        )
        .unwrap();
        assert_eq!(strip(&onepass), strip(&exact0));
        let sampled = cmd_sweep(
            &Flags::parse(&args(&[base, &["--engine", "sampled:3"][..]].concat())).unwrap(),
        )
        .unwrap();
        assert!(sampled.contains("Sampled"), "{sampled}");
    }

    #[test]
    fn hierarchy_command_appends_measured_section_per_engine() {
        let base = &["--levels", "100:1e7,10000:1e6", "--kernel", "matmul", "--n", "16"];
        let onepass = cmd_hierarchy(&Flags::parse(&args(base)).unwrap()).unwrap();
        assert!(onepass.contains("measured (matmul canonical trace"), "{onepass}");
        assert!(onepass.contains("io_i (words)"), "{onepass}");
        // The replay engine renders the same measured numbers.
        let replay = cmd_hierarchy(
            &Flags::parse(&args(&[base, &["--engine", "replay"][..]].concat())).unwrap(),
        )
        .unwrap();
        assert_eq!(
            onepass.replace("StackDist", "Replay"),
            replay,
            "engines must agree on every measured number"
        );
        // Without --kernel there is no measured section.
        let plain = cmd_hierarchy(
            &Flags::parse(&args(&["--levels", "100:1e7,10000:1e6"])).unwrap(),
        )
        .unwrap();
        assert!(!plain.contains("measured ("), "{plain}");
    }

    #[test]
    fn verify_registry_parses_all_modes() {
        assert_eq!(verify_by_name("full").unwrap(), Verify::Full);
        assert_eq!(
            verify_by_name("freivalds").unwrap(),
            Verify::Freivalds { rounds: 2 }
        );
        assert_eq!(verify_by_name("none").unwrap(), Verify::None);
        assert!(verify_by_name("3").is_err());
    }

    #[test]
    fn dispatch_handles_commands_and_errors() {
        assert!(dispatch(&args(&["help"])).unwrap().contains("USAGE"));
        assert!(dispatch(&args(&["warp"])).unwrap().contains("Warp"));
        assert!(dispatch(&args(&["bogus"])).is_err());
        assert!(dispatch(&[]).is_err());
    }

    #[test]
    fn parallel_command_renders_the_sweep_table() {
        let f = Flags::parse(&args(&[
            "--pes", "2", "--topology", "linear", "--n", "16",
        ]))
        .unwrap();
        let out = cmd_parallel(&f).unwrap();
        assert!(out.contains("matmul on linear(2)"), "{out}");
        assert!(out.contains("r_ext"), "{out}");
        assert!(out.contains("binds"), "{out}");
        // A mesh of 4 PEs is a 2x2 arrangement.
        let f = Flags::parse(&args(&[
            "--pes", "4", "--topology", "mesh", "--kernel", "transpose", "--n", "12",
        ]))
        .unwrap();
        let out = cmd_parallel(&f).unwrap();
        assert!(out.contains("transpose on mesh(2x2)"), "{out}");
        // Transpose never communicates: r_comm renders as "-".
        assert!(out.contains(" - "), "{out}");
    }

    #[test]
    fn parallel_command_rejects_bad_shapes() {
        // Non-square mesh PE count.
        let f = Flags::parse(&args(&["--pes", "3", "--topology", "mesh"])).unwrap();
        assert!(cmd_parallel(&f).unwrap_err().contains("square"), "mesh check");
        // Unknown topology / kernel; missing required flags.
        let f = Flags::parse(&args(&["--pes", "2", "--topology", "ring"])).unwrap();
        assert!(cmd_parallel(&f).unwrap_err().contains("unknown topology"));
        let f = Flags::parse(&args(&[
            "--pes", "2", "--topology", "linear", "--kernel", "fft",
        ]))
        .unwrap();
        assert!(cmd_parallel(&f).unwrap_err().contains("unknown parallel kernel"));
        let f = Flags::parse(&args(&["--pes", "2"])).unwrap();
        assert!(cmd_parallel(&f).unwrap_err().contains("--topology"));
        let f = Flags::parse(&args(&["--topology", "linear"])).unwrap();
        assert!(cmd_parallel(&f).unwrap_err().contains("pes"));
        // Zero PEs.
        let f = Flags::parse(&args(&["--pes", "0", "--topology", "linear"])).unwrap();
        assert!(cmd_parallel(&f).is_err());
    }

    #[test]
    fn levels_parse_happy_path() {
        let spec = parse_levels("1024:1e8,65536:1e7").unwrap();
        assert_eq!(spec.depth(), 2);
        assert_eq!(spec.level(0).capacity().get(), 1024);
        assert_eq!(spec.level(1).bandwidth().get(), 1.0e7);
        // Whitespace around items and separators is tolerated.
        let spec = parse_levels(" 64 : 2.5 , 128 : 1.0 ").unwrap();
        assert_eq!(spec.depth(), 2);
        // A single level is a valid (flat) machine.
        assert_eq!(parse_levels("4096:1e9").unwrap().depth(), 1);
    }

    #[test]
    fn levels_reject_malformed_specs() {
        // No colon.
        let err = parse_levels("1024").unwrap_err();
        assert!(err.contains("expected CAP:BW"), "{err}");
        // Unparsable capacity / bandwidth.
        assert!(parse_levels("abc:1e6").unwrap_err().contains("capacity"));
        assert!(parse_levels("1024:xyz").unwrap_err().contains("bandwidth"));
        // Fractional capacities are not words.
        assert!(parse_levels("10.5:1e6").unwrap_err().contains("capacity"));
        // Empty item (trailing comma).
        assert!(parse_levels("1024:1e6,").is_err());
        assert!(parse_levels("").is_err());
    }

    #[test]
    fn levels_reject_zero_capacity_and_bad_bandwidth() {
        let err = parse_levels("0:1e6").unwrap_err();
        assert!(err.contains("level 1"), "{err}");
        assert!(err.contains("positive"), "{err}");
        let err = parse_levels("1024:0").unwrap_err();
        assert!(err.contains("bandwidth"), "{err}");
        assert!(parse_levels("1024:-2e6").is_err());
    }

    #[test]
    fn levels_parse_optional_latency() {
        let spec = parse_levels("1024:1e8,65536:1e7:2e-7").unwrap();
        assert_eq!(spec.level(0).latency().get(), 0.0);
        assert_eq!(spec.level(1).latency().get(), 2.0e-7);
        // Whitespace around the third field is tolerated too.
        let spec = parse_levels(" 64 : 2.5 : 0.125 , 128 : 1.0 ").unwrap();
        assert_eq!(spec.level(0).latency().get(), 0.125);
        // Explicit zero latency is valid (the streaming model).
        assert_eq!(
            parse_levels("64:1.0:0").unwrap().level(0).latency().get(),
            0.0
        );
    }

    #[test]
    fn levels_reject_bad_latencies() {
        // Negative and non-finite latencies are physically meaningless.
        let err = parse_levels("1024:1e8:-1").unwrap_err();
        assert!(err.contains("level 1"), "{err}");
        assert!(err.contains("latency"), "{err}");
        assert!(parse_levels("1024:1e8:NaN").is_err());
        assert!(parse_levels("1024:1e8:inf").is_err());
        // Unparsable latency.
        assert!(parse_levels("1024:1e8:soon").unwrap_err().contains("latency"));
        // Too many fields.
        let err = parse_levels("1024:1e8:0.5:8:5e6:9").unwrap_err();
        assert!(err.contains("expected CAP:BW[:LAT[:LINE[:WBW]]]"), "{err}");
    }

    #[test]
    fn levels_parse_device_fields() {
        // LINE: the level's own transfer granularity.
        let spec = parse_levels("1024:1e8,65536:1e7:2e-7:8").unwrap();
        assert_eq!(spec.level(0).line_words(), 1);
        assert_eq!(spec.level(1).line_words(), 8);
        assert!(spec.level(1).write_bandwidth().is_none());
        assert!(spec.is_device_real());
        // WBW: a split write channel (flash-style asymmetric pricing).
        let spec = parse_levels("1024:1e8,65536:1e7:0:64:2.5e6").unwrap();
        assert_eq!(spec.level(1).line_words(), 64);
        assert_eq!(spec.level(1).write_bandwidth().map(|b| b.get()), Some(2.5e6));
        // Whitespace tolerated; LINE = 1 is the explicit word-granular spelling.
        let spec = parse_levels(" 64 : 2.5 : 0 : 1 ").unwrap();
        assert_eq!(spec.level(0).line_words(), 1);
        assert!(!spec.is_device_real());
    }

    #[test]
    fn levels_reject_bad_device_fields() {
        // LINE must be a positive power of two.
        let err = parse_levels("1024:1e8:0:0").unwrap_err();
        assert!(err.contains("level 1"), "{err}");
        assert!(err.contains("power of two"), "{err}");
        assert!(parse_levels("1024:1e8:0:7").unwrap_err().contains("power of two"));
        assert!(parse_levels("1024:1e8:0:wide").unwrap_err().contains("line size"));
        // WBW must be a positive finite bandwidth.
        let err = parse_levels("1024:1e8:0:8:0").unwrap_err();
        assert!(err.contains("write bandwidth"), "{err}");
        assert!(parse_levels("1024:1e8:0:8:-1").is_err());
        assert!(parse_levels("1024:1e8:0:8:slow").unwrap_err().contains("write bandwidth"));
        // Every diagnostic stays on one line.
        for bad in ["1024:1e8:0:0", "1024:1e8:0:7", "1024:1e8:0:8:0"] {
            let err = parse_levels(bad).unwrap_err();
            assert!(!err.contains('\n'), "diagnostic must be one line: {err:?}");
        }
    }

    #[test]
    fn line_words_flag_parses_and_rejects() {
        let none = Flags::parse(&args(&[])).unwrap();
        assert_eq!(parse_line_words(&none), Ok(None));
        let f = Flags::parse(&args(&["--line-words", "8"])).unwrap();
        assert_eq!(parse_line_words(&f), Ok(Some(8)));
        let f = Flags::parse(&args(&["--line-words", "1"])).unwrap();
        assert_eq!(parse_line_words(&f), Ok(Some(1)));
        for bad in ["0", "3", "12", "banana", "-8"] {
            let f = Flags::parse(&args(&["--line-words", bad])).unwrap();
            let err = parse_line_words(&f).unwrap_err();
            assert!(!err.contains('\n'), "diagnostic must be one line: {err:?}");
        }
        // The domain errors name the rule.
        let f = Flags::parse(&args(&["--line-words", "3"])).unwrap();
        assert!(parse_line_words(&f).unwrap_err().contains("power of two"));
    }

    #[test]
    fn sweep_line_words_runs_the_device_engines_bit_identically() {
        let base = &["--kernel", "matmul", "--n", "16", "--line-words", "2"];
        let onepass = cmd_sweep(
            &Flags::parse(&args(&[base, &["--engine", "stackdist"][..]].concat())).unwrap(),
        )
        .unwrap();
        let replay = cmd_sweep(
            &Flags::parse(&args(&[base, &["--engine", "replay"][..]].concat())).unwrap(),
        )
        .unwrap();
        // The model line renders, the table carries the dual ledger, and
        // both engines agree on every number below the engine header.
        assert!(onepass.contains("2-word lines"), "{onepass}");
        assert!(onepass.contains("C_wb"), "{onepass}");
        let strip = |s: &str| s.lines().skip(1).collect::<Vec<_>>().join("\n");
        assert_eq!(strip(&onepass), strip(&replay));
        // Device sweeps differ from the word-granular cache-model curve.
        let word = cmd_sweep(
            &Flags::parse(&args(&[
                "--kernel", "matmul", "--n", "16", "--engine", "stackdist",
            ]))
            .unwrap(),
        )
        .unwrap();
        assert_ne!(strip(&onepass), strip(&word));
        // auto resolves inside the tagged engines — never the analytic or
        // sampled word-granular tiers.
        let auto = cmd_sweep(
            &Flags::parse(&args(&[base, &["--engine", "auto"][..]].concat())).unwrap(),
        )
        .unwrap();
        assert!(!auto.contains("Analytic"), "{auto}");
        assert!(!auto.contains("Sampled"), "{auto}");
    }

    #[test]
    fn sweep_line_words_flag_is_hardened() {
        let run = |extra: &[&str]| {
            cmd_sweep(
                &Flags::parse(&args(
                    &[&["--kernel", "matmul", "--n", "8"][..], extra].concat(),
                ))
                .unwrap(),
            )
        };
        // Malformed values are one-line diagnostics.
        for bad in ["0", "3", "banana"] {
            let err = run(&["--engine", "stackdist", "--line-words", bad]).unwrap_err();
            assert!(!err.contains('\n'), "diagnostic must be one line: {err:?}");
        }
        // Without an engine the flag would silently not price anything.
        let err = run(&["--line-words", "4"]).unwrap_err();
        assert!(err.contains("--engine"), "{err}");
        // Engines that cannot price the model are refused by the sweep
        // with a directed message, not silently degraded.
        let err = run(&["--engine", "sampled:3", "--line-words", "4"]).unwrap_err();
        assert!(err.contains("replay"), "{err}");
        // Device sweeps run unbudgeted: the resumable drivers are
        // word-granular machinery.
        let err = run(&[
            "--engine",
            "stackdist",
            "--line-words",
            "4",
            "--max-addresses",
            "100",
        ])
        .unwrap_err();
        assert!(err.contains("unbudgeted"), "{err}");
    }

    #[test]
    fn hierarchy_device_annotations_measure_write_backs() {
        // An outer level with its own 8-word line: the measured section
        // switches to the dual ledger, defaulting to the replay engine
        // (mixed granularity: word-granular local under an 8-word line).
        let mixed = cmd_hierarchy(
            &Flags::parse(&args(&[
                "--levels", "128:1e7,16384:1e6:0:8", "--kernel", "matmul", "--n", "16",
            ]))
            .unwrap(),
        )
        .unwrap();
        assert!(mixed.contains("wb_i (words)"), "{mixed}");
        assert!(mixed.contains("Replay"), "{mixed}");
        // A uniform line (the flag covers the local level too) keeps the
        // one-pass engine, bit-identical to the explicit replay run.
        let base = &[
            "--levels", "128:1e7,16384:1e6:0:8", "--kernel", "matmul", "--n", "16",
            "--line-words", "8",
        ];
        let onepass = cmd_hierarchy(&Flags::parse(&args(base)).unwrap()).unwrap();
        assert!(onepass.contains("StackDist"), "{onepass}");
        assert!(onepass.contains("8-word lines"), "{onepass}");
        let replay = cmd_hierarchy(
            &Flags::parse(&args(&[base, &["--engine", "replay"][..]].concat())).unwrap(),
        )
        .unwrap();
        assert_eq!(onepass.replace("StackDist", "Replay"), replay);
        // The write-back ledger is live: matmul's C accumulation dirties
        // lines, so some boundary records write-backs. (The measured rows
        // are `L<i> read wb r`; the analytic rows above fail the u64
        // parse on their scientific-notation bandwidth column.)
        let some_wb = onepass
            .lines()
            .filter(|l| l.starts_with('L'))
            .filter_map(|l| l.split_whitespace().nth(2)?.parse::<u64>().ok())
            .any(|wb| wb > 0);
        assert!(some_wb, "{onepass}");
    }

    #[test]
    fn hierarchy_command_consumes_latency() {
        // The knob must reach the computation: the same ladder with a
        // latency on the outer level reports a different (higher) ridge.
        let base = Flags::parse(&args(&["--levels", "100:1e7,10000:1e6", "--c", "1e8"])).unwrap();
        let with_lat = Flags::parse(&args(&[
            "--levels",
            "100:1e7,10000:1e6:1e-6",
            "--c",
            "1e8",
        ]))
        .unwrap();
        let a = cmd_hierarchy(&base).unwrap();
        let b = cmd_hierarchy(&with_lat).unwrap();
        assert_ne!(a, b, "latency must change the rendered analysis");
        // Outer ridge doubles: 1e8/1e6 = 100 -> 1e8/5e5 = 200.
        assert!(b.contains("200"), "{b}");
    }

    #[test]
    fn levels_reject_non_monotone_capacities() {
        let err = parse_levels("4096:1e8,1024:1e7").unwrap_err();
        assert!(err.contains("grow outward"), "{err}");
        // Equal capacities are just as invalid.
        assert!(parse_levels("4096:1e8,4096:1e7").is_err());
    }

    #[test]
    fn hierarchy_command_renders_per_level_tables() {
        let f = Flags::parse(&args(&["--levels", "100:1e7,10000:1e6", "--c", "1e8"])).unwrap();
        let out = cmd_hierarchy(&f).unwrap();
        assert!(out.contains("L1"), "{out}");
        assert!(out.contains("L2"), "{out}");
        // Port ridge C/IO_0 = 10, outer ridge = 100.
        assert!(out.contains("10"), "{out}");
        // matmul balanced at M = (10·√3)² = 300 at the port; matvec never.
        assert!(out.contains("impossible"), "{out}");
        // Missing --levels is a usage error, as is a malformed value.
        assert!(cmd_hierarchy(&Flags::parse(&args(&[])).unwrap()).is_err());
        let f = Flags::parse(&args(&["--levels", "bogus"])).unwrap();
        assert!(cmd_hierarchy(&f).is_err());
    }
}
