//! `balance store …` and `balance serve`: the crash-safe profile store's
//! front ends.
//!
//! * `balance store build` precomputes a kernel registry × size grid into
//!   a content-addressed [`ProfileStore`] — resumably: grid points whose
//!   entry already validates are skipped, so a killed build completes
//!   only the remainder on re-run.
//! * `balance store fsck` scrubs a store: quarantines corrupt, truncated,
//!   or stale-version images, adopts valid orphans, and rewrites the
//!   manifest.
//! * `balance serve` answers batch/REPL what-if queries (`io`,
//!   `intensity`, `balance`, `binding`) from the store through the
//!   self-healing [`ProfileService`]: hits are served as-is, misses and
//!   quarantined entries are recomputed down the repair ladder and
//!   re-persisted, and every answer carries its provenance
//!   (`hit` / `repaired(miss)` / `repaired(quarantined)`, engine,
//!   exactness). Exact-only queries (`balance`, `binding`) refuse
//!   sampled artifacts instead of silently degrading.

use std::collections::HashMap;
use std::io::Read as _;

use balance_core::OpsPerSec;
use balance_kernels::prelude::*;
use balance_machine::{FaultPlan, ProfilePayload, ProfileStore};
use balance_roofline::HierarchicalRoofline;

use crate::cli::{parse_budget, parse_levels, parse_line_words, Flags};

/// Default size grid for `store build` when `--grid` is absent: powers
/// of two, valid for every registry kernel (the FFT in particular).
pub const DEFAULT_GRID: [usize; 3] = [16, 32, 64];

/// Parses `--grid N1,N2,...` into problem sizes; absent means
/// [`DEFAULT_GRID`].
///
/// # Errors
///
/// One-line diagnostics for unparsable, zero, or empty grids.
pub fn parse_grid(flags: &Flags) -> Result<Vec<usize>, String> {
    let Some(s) = flags.str_opt("grid") else {
        return Ok(DEFAULT_GRID.to_vec());
    };
    let mut grid = Vec::new();
    for item in s.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        let n: usize = item
            .parse()
            .map_err(|e| format!("--grid '{item}': {e}"))?;
        if n == 0 {
            return Err(
                "--grid 0: grid entries are problem sizes and must be positive".to_string(),
            );
        }
        grid.push(n);
    }
    if grid.is_empty() {
        return Err("--grid: expected a comma-separated list of problem sizes".to_string());
    }
    Ok(grid)
}

/// Parses `--kernels a,b,...` against the profile-store registry; absent
/// means every registry kernel.
///
/// # Errors
///
/// Unknown names, with the list of valid ones.
pub fn parse_kernels(flags: &Flags) -> Result<Vec<Box<dyn Kernel>>, String> {
    let Some(s) = flags.str_opt("kernels") else {
        return Ok(registry());
    };
    let mut kernels = Vec::new();
    for name in s.split(',').map(str::trim).filter(|n| !n.is_empty()) {
        kernels.push(registry_kernel(name).ok_or_else(|| {
            let known: Vec<String> = registry().iter().map(|k| k.name().to_string()).collect();
            format!("--kernels: unknown kernel '{name}' (try: {})", known.join(", "))
        })?);
    }
    if kernels.is_empty() {
        return Err("--kernels: expected a comma-separated list of kernel names".to_string());
    }
    Ok(kernels)
}

fn store_at(flags: &Flags, flag: &str) -> Result<ProfileStore, String> {
    let dir = flags
        .str_opt(flag)
        .ok_or(format!("missing required flag --{flag} (the store directory)"))?;
    ProfileStore::open(dir).map_err(|e| e.to_string())
}

fn traffic_model(flags: &Flags) -> Result<TrafficModel, String> {
    Ok(match parse_line_words(flags)? {
        Some(lw) => TrafficModel::device(lw),
        None => TrafficModel::WORD,
    })
}

/// `balance store build|fsck …`: dispatch on the store subcommand.
///
/// # Errors
///
/// User-facing messages for unknown subcommands or bad flags.
pub fn cmd_store(args: &[String]) -> Result<String, String> {
    let Some((sub, rest)) = args.split_first() else {
        return Err("usage: balance store <build|fsck> --dir <path> …".to_string());
    };
    let flags = Flags::parse(rest)?;
    match sub.as_str() {
        "build" => cmd_store_build(&flags),
        "fsck" => cmd_store_fsck(&flags),
        other => Err(format!(
            "unknown store subcommand '{other}' (try: build, fsck)"
        )),
    }
}

/// `balance store build --dir <path> [--kernels a,b] [--grid N1,N2]
/// [--line-words L] [budget flags]`: precompute the registry × grid,
/// resumably.
///
/// # Errors
///
/// Flag or store-open errors, as one-line diagnostics.
pub fn cmd_store_build(flags: &Flags) -> Result<String, String> {
    let store = store_at(flags, "dir")?;
    let kernels = parse_kernels(flags)?;
    let grid = parse_grid(flags)?;
    let model = traffic_model(flags)?;
    let budget = parse_budget(flags)?;
    let outcome = build_store(&store, &kernels, &grid, model, budget, &FaultPlan::none())
        .map_err(|e| e.to_string())?;
    let mut out = format!(
        "store {}: built {}, skipped {} (already valid), failed {}\n",
        store.dir().display(),
        outcome.built,
        outcome.skipped,
        outcome.failed.len()
    );
    for (key, why) in &outcome.failed {
        out.push_str(&format!("  failed {key}: {why}\n"));
    }
    Ok(out)
}

/// `balance store fsck --dir <path>`: scrub the store and report.
///
/// # Errors
///
/// Flag or store errors, as one-line diagnostics.
pub fn cmd_store_fsck(flags: &Flags) -> Result<String, String> {
    let store = store_at(flags, "dir")?;
    let report = store.fsck().map_err(|e| e.to_string())?;
    Ok(format!("store {}: {report}\n", store.dir().display()))
}

/// One serve session: the self-healing service plus in-memory caches so
/// repeated queries against the same `(kernel, n)` artifact are answered
/// at memory speed (the ≥10⁵ queries/s target is measured through this
/// exact path by `benches/profstore.rs`).
#[derive(Debug)]
pub struct ServeSession<'a> {
    service: ProfileService<'a>,
    model: TrafficModel,
    peak: f64,
    profiles: HashMap<(String, usize), Served>,
    ops: HashMap<(String, usize), u64>,
}

impl<'a> ServeSession<'a> {
    /// A session over `store`. `peak` is the compute roof in op/s used
    /// by `binding` queries; `budget` bounds repair recomputes.
    #[must_use]
    pub fn new(
        store: &'a ProfileStore,
        model: TrafficModel,
        budget: Option<balance_core::Budget>,
        peak: f64,
    ) -> ServeSession<'a> {
        let mut service = ProfileService::new(store);
        if let Some(b) = budget {
            service = service.with_budget(b);
        }
        ServeSession {
            service,
            model,
            peak,
            profiles: HashMap::new(),
            ops: HashMap::new(),
        }
    }

    /// Answers one query line; `None` for blanks and `#` comments.
    /// Malformed or failing queries answer a `! `-prefixed diagnostic —
    /// the session keeps serving.
    pub fn answer(&mut self, line: &str) -> Option<String> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return None;
        }
        Some(match self.answer_query(line) {
            Ok(a) => a,
            Err(e) => format!("! {line}: {e}"),
        })
    }

    fn answer_query(&mut self, line: &str) -> Result<String, String> {
        let fields: Vec<&str> = line.split_whitespace().collect();
        match fields.as_slice() {
            ["io", kernel, n, m] => {
                let (n, m) = (parse_n(n)?, parse_m(m)?);
                let served = self.serve(kernel, n)?;
                let words = io_words_at(&served.payload, m);
                Ok(format!(
                    "io {kernel} {n} {m} = {words} words  [{}]",
                    served.describe()
                ))
            }
            ["intensity", kernel, n, m] => {
                let (n, m) = (parse_n(n)?, parse_m(m)?);
                let ops = self.comp_ops(kernel, n)?;
                let served = self.serve(kernel, n)?;
                let words = io_words_at(&served.payload, m);
                let r = if words == 0 {
                    f64::INFINITY
                } else {
                    ops as f64 / words as f64
                };
                Ok(format!(
                    "intensity {kernel} {n} {m} = {r:.4} op/word  [{}]",
                    served.describe()
                ))
            }
            ["balance", kernel, n, ratio] => {
                let n = parse_n(n)?;
                let ratio: f64 = ratio
                    .parse()
                    .map_err(|e| format!("ops/word ratio '{ratio}': {e}"))?;
                let ops = self.comp_ops(kernel, n)?;
                let served = self.serve(kernel, n)?;
                require_exact(served, "balance")?;
                match balance_point(&served.payload, ops, ratio) {
                    Some(m) => Ok(format!(
                        "balance {kernel} {n} {ratio} = M {m} words  [{}]",
                        served.describe()
                    )),
                    None => Ok(format!(
                        "balance {kernel} {n} {ratio} = impossible (io-bounded: no \
                         capacity reaches {ratio} op/word)  [{}]",
                        served.describe()
                    )),
                }
            }
            ["binding", kernel, n, levels] => {
                let n = parse_n(n)?;
                let spec = parse_levels(levels)?;
                let ops = self.comp_ops(kernel, n)?;
                let peak = self.peak;
                let served = self.serve(kernel, n)?;
                require_exact(served, "binding")?;
                let traffic = match &served.payload {
                    ProfilePayload::Capacity(p) => p.traffic_for(&spec),
                    ProfilePayload::Traffic(t) => t.traffic_for(&spec),
                };
                let ai: Vec<f64> = (0..spec.depth())
                    .map(|i| match traffic.get(i) {
                        Some(0) | None => f64::INFINITY,
                        Some(w) => ops as f64 / w as f64,
                    })
                    .collect();
                let roofline = HierarchicalRoofline::new(OpsPerSec::new(peak), &spec)
                    .map_err(|e| e.to_string())?;
                let binds = match roofline.binding_level(&ai) {
                    Some(level) => format!("L{}", level + 1),
                    None => "compute".to_string(),
                };
                Ok(format!(
                    "binding {kernel} {n} = {binds} (attainable {:.3e} op/s)  [{}]",
                    roofline.attainable(&ai),
                    served.describe()
                ))
            }
            _ => Err("expected 'io K N M', 'intensity K N M', 'balance K N R', \
                      or 'binding K N CAP:BW[,...]'"
                .to_string()),
        }
    }

    fn serve(&mut self, kernel: &str, n: usize) -> Result<&Served, String> {
        let key = (kernel.to_string(), n);
        if !self.profiles.contains_key(&key) {
            let k = registry_kernel(kernel).ok_or_else(|| {
                let known: Vec<String> =
                    registry().iter().map(|k| k.name().to_string()).collect();
                format!("unknown kernel '{kernel}' (try: {})", known.join(", "))
            })?;
            let served = self
                .service
                .fetch(k.as_ref(), n, self.model)
                .map_err(|e| e.to_string())?;
            self.profiles.insert(key.clone(), served);
        }
        Ok(&self.profiles[&key])
    }

    fn comp_ops(&mut self, kernel: &str, n: usize) -> Result<u64, String> {
        let key = (kernel.to_string(), n);
        if let Some(&ops) = self.ops.get(&key) {
            return Ok(ops);
        }
        let k = registry_kernel(kernel).ok_or_else(|| format!("unknown kernel '{kernel}'"))?;
        let trace = k
            .access_trace(n)
            .ok_or_else(|| format!("{kernel} has no canonical trace at n = {n}"))?;
        let ops = trace.comp_ops();
        self.ops.insert(key, ops);
        Ok(ops)
    }
}

fn parse_n(s: &str) -> Result<usize, String> {
    s.parse().map_err(|e| format!("problem size '{s}': {e}"))
}

fn parse_m(s: &str) -> Result<u64, String> {
    s.parse().map_err(|e| format!("capacity '{s}': {e}"))
}

/// Total boundary words at capacity `m`: the capacity curve's `io_at`,
/// or — device-real — line-granular read words plus write-back words.
fn io_words_at(payload: &ProfilePayload, m: u64) -> u64 {
    match payload {
        ProfilePayload::Capacity(p) => p.io_at(m),
        ProfilePayload::Traffic(t) => t.read_words_at(m) + t.writeback_words_at(m),
    }
}

/// Exact-only consumers (`balance`, `binding`) refuse sampled artifacts:
/// an approximate curve would silently shift the answer.
fn require_exact(served: &Served, query: &str) -> Result<(), String> {
    if served.is_exact() {
        Ok(())
    } else {
        Err(format!(
            "refusing a non-exact artifact (sampling rate 1/{}) for the exact-only \
             '{query}' query; rebuild the entry without a budget cap",
            1u64 << served.profile().sample_shift()
        ))
    }
}

/// Smallest capacity whose intensity `ops / io_at(M)` reaches `ratio`,
/// or `None` when even the saturating capacity stays io-bounded below
/// it. Binary search over the monotone (non-increasing) io curve.
fn balance_point(payload: &ProfilePayload, ops: u64, ratio: f64) -> Option<u64> {
    let reaches = |m: u64| {
        let words = io_words_at(payload, m);
        words == 0 || ops as f64 / words as f64 >= ratio
    };
    let mut hi = payload.profile().saturating_capacity().max(1);
    if !reaches(hi) {
        return None;
    }
    let mut lo = 1u64;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if reaches(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(lo)
}

/// `balance serve --store <path> [--batch FILE|-] [--line-words L]
/// [--peak <op/s>] [budget flags]`: answer a batch of what-if queries
/// through the self-healing store. `--batch -` (or no `--batch`) reads
/// stdin to EOF, so `balance serve --store s` doubles as a pipe REPL.
///
/// # Errors
///
/// Flag, store-open, or batch-file errors, as one-line diagnostics
/// (individual query failures answer inline `! ` lines instead).
pub fn cmd_serve(flags: &Flags) -> Result<String, String> {
    let store = store_at(flags, "store")?;
    let model = traffic_model(flags)?;
    let budget = parse_budget(flags)?;
    let peak = match flags.str_opt("peak") {
        Some(_) => flags.f64("peak")?,
        None => 1.0e9,
    };
    let input = match flags.str_opt("batch") {
        Some("-") | None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| format!("reading stdin: {e}"))?;
            buf
        }
        Some(path) => std::fs::read_to_string(path)
            .map_err(|e| format!("--batch {path}: {e}"))?,
    };
    let mut session = ServeSession::new(&store, model, budget, peak);
    let mut out = String::new();
    for line in input.lines() {
        if let Some(answer) = session.answer(line) {
            out.push_str(&answer);
            out.push('\n');
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| (*x).to_string()).collect()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "kb-storecli-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn grid_rejects_zero_and_garbage() {
        let f = Flags::parse(&args(&["--grid", "0"])).unwrap();
        let err = parse_grid(&f).unwrap_err();
        assert!(err.contains("positive"), "{err}");
        let f = Flags::parse(&args(&["--grid", "16,abc"])).unwrap();
        assert!(parse_grid(&f).is_err());
        let f = Flags::parse(&args(&["--grid", ","])).unwrap();
        assert!(parse_grid(&f).is_err());
        let f = Flags::parse(&args(&["--grid", "8, 16"])).unwrap();
        assert_eq!(parse_grid(&f).unwrap(), vec![8, 16]);
    }

    #[test]
    fn kernels_flag_rejects_unknown_names() {
        let f = Flags::parse(&args(&["--kernels", "matmul,nonsense"])).unwrap();
        let err = match parse_kernels(&f) {
            Err(e) => e,
            Ok(_) => panic!("unknown kernel accepted"),
        };
        assert!(err.contains("nonsense") && err.contains("matmul"), "{err}");
        let f = Flags::parse(&args(&["--kernels", "fft,sort"])).unwrap();
        assert_eq!(parse_kernels(&f).unwrap().len(), 2);
    }

    #[test]
    fn store_build_requires_dir_and_rejects_unwritable() {
        let f = Flags::parse(&args(&[])).unwrap();
        assert!(cmd_store_build(&f).unwrap_err().contains("--dir"));
        let f = Flags::parse(&args(&["--dir", "/proc/kb-no-such-store"])).unwrap();
        assert!(cmd_store_build(&f).is_err());
    }

    #[test]
    fn store_build_then_fsck_then_serve_round_trip() {
        let dir = tmp_dir("roundtrip");
        let dir_s = dir.to_string_lossy().to_string();
        let f = Flags::parse(&args(&[
            "--dir", &dir_s, "--kernels", "matmul", "--grid", "8,16",
        ]))
        .unwrap();
        let out = cmd_store_build(&f).unwrap();
        assert!(out.contains("built 2"), "{out}");
        // Resumable: a second pass skips everything.
        let out = cmd_store_build(&f).unwrap();
        assert!(out.contains("skipped 2"), "{out}");
        let f = Flags::parse(&args(&["--dir", &dir_s])).unwrap();
        let out = cmd_store_fsck(&f).unwrap();
        assert!(out.contains("2 valid"), "{out}");

        let store = ProfileStore::open(&dir).unwrap();
        let mut session = ServeSession::new(&store, TrafficModel::WORD, None, 1.0e9);
        let a = session.answer("io matmul 16 64").unwrap();
        assert!(a.starts_with("io matmul 16 64 = "), "{a}");
        assert!(a.contains("hit ["), "{a}");
        let a = session.answer("intensity matmul 16 64").unwrap();
        assert!(a.contains("op/word"), "{a}");
        let a = session.answer("balance matmul 16 2.0").unwrap();
        assert!(a.contains("= M "), "{a}");
        let a = session
            .answer("binding matmul 16 64:1e8,4096:1e7")
            .unwrap();
        assert!(a.contains("binding matmul 16 = "), "{a}");
        assert!(session.answer("# comment").is_none());
        assert!(session.answer("").is_none());
        let a = session.answer("io nonsense 8 8").unwrap();
        assert!(a.starts_with("! "), "{a}");
        let a = session.answer("io matmul eight 8").unwrap();
        assert!(a.starts_with("! "), "{a}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_repairs_a_cold_store_and_balance_point_is_monotone_consistent() {
        let dir = tmp_dir("cold");
        let store = ProfileStore::open(&dir).unwrap();
        let mut session = ServeSession::new(&store, TrafficModel::WORD, None, 1.0e9);
        let a = session.answer("io matmul 8 27").unwrap();
        assert!(a.contains("repaired(miss)"), "{a}");
        // The balance answer, recomputed directly: intensity at M-1 must
        // miss the target and at M reach it.
        let a = session.answer("balance matmul 8 1.5").unwrap();
        let m: u64 = a
            .split("= M ")
            .nth(1)
            .and_then(|s| s.split(' ').next())
            .unwrap()
            .parse()
            .unwrap();
        let served = session.serve("matmul", 8).unwrap();
        let profile = served.profile().clone();
        let ops = session.comp_ops("matmul", 8).unwrap();
        assert!(ops as f64 / profile.io_at(m) as f64 >= 1.5);
        if m > 1 {
            assert!((ops as f64) / profile.io_at(m - 1) as f64 <= 1.5 + 1e-9);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn exact_only_queries_refuse_sampled_artifacts() {
        use balance_core::Budget;
        let dir = tmp_dir("exactonly");
        let store = ProfileStore::open(&dir).unwrap();
        // A starved budget forces the fft repair down to the sampled tier.
        let budget = Budget::unlimited().with_max_addresses(64);
        let mut session = ServeSession::new(&store, TrafficModel::WORD, Some(budget), 1.0e9);
        let a = session.answer("io fft 64 32").unwrap();
        assert!(a.contains("rate 1/"), "{a}");
        let a = session.answer("balance fft 64 2.0").unwrap();
        assert!(a.starts_with("! ") && a.contains("non-exact"), "{a}");
        let a = session.answer("binding fft 64 32:1e8").unwrap();
        assert!(a.starts_with("! ") && a.contains("non-exact"), "{a}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_cli_reads_a_batch_file() {
        let dir = tmp_dir("batch");
        let batch = dir.join("queries.txt");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(&batch, "# header\nio matmul 8 27\nbogus line\n").unwrap();
        let f = Flags::parse(&args(&[
            "--store",
            &dir.to_string_lossy(),
            "--batch",
            &batch.to_string_lossy(),
        ]))
        .unwrap();
        let out = cmd_serve(&f).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2, "{out}");
        assert!(lines[0].starts_with("io matmul 8 27 = "), "{out}");
        assert!(lines[1].starts_with("! bogus line"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
