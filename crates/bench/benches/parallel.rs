//! Criterion benchmarks for the parallel architectures (experiments E8–E9
//! and the E21 measured multi-PE sweep).

use balance_core::{GrowthLaw, Words};
use balance_kernels::{workload, Verify};
use balance_parallel::systolic::givens::triangularize;
use balance_parallel::systolic::matmul::systolic_matmul;
use balance_parallel::{
    linear_array_series, mesh_series, parallel_sweep_par, warp_cell, ParMatMul,
    ParallelSweepConfig, Topology,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_systolic_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("E9_systolic_matmul");
    for n in [8usize, 16, 32] {
        let a = workload::random_matrix(n, 1);
        let b = workload::random_matrix(n, 2);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, &n| {
            bench.iter(|| systolic_matmul(&a, &b, n));
        });
    }
    g.finish();
}

fn bench_systolic_givens(c: &mut Criterion) {
    let mut g = c.benchmark_group("E9_systolic_givens");
    for n in [8usize, 16, 32] {
        let a = workload::random_matrix(n, 3);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, &n| {
            bench.iter(|| triangularize(&a, n));
        });
    }
    g.finish();
}

fn bench_scaling_series(c: &mut Criterion) {
    let ps: Vec<u64> = (1..=64).collect();
    let law = GrowthLaw::Polynomial { degree: 2.0 };
    c.bench_function("E8_linear_array_series_64", |b| {
        b.iter(|| linear_array_series(warp_cell(), law, Words::new(4096), &ps).expect("series"));
    });
    c.bench_function("E9_mesh_series_64", |b| {
        b.iter(|| mesh_series(warp_cell(), law, Words::new(4096), &ps).expect("series"));
    });
}

fn bench_parallel_sweep(c: &mut Criterion) {
    // The E21 production configuration: matmul at n = 48 across 1/2/4-PE
    // linear machines and a pow2 per-PE memory ladder, anchored Freivalds
    // verification — prices the whole measured-§4 pipeline (distributed
    // big tiles, ring rotation, two-ledger accounting).
    let cfg = ParallelSweepConfig::new(
        48,
        vec![
            Topology::linear(1).expect("valid"),
            Topology::linear(2).expect("valid"),
            Topology::linear(4).expect("valid"),
        ],
        (5..=10).map(|k| 1usize << k).collect(),
        1,
    )
    .with_verify(Verify::Freivalds { rounds: 2 });
    let mut g = c.benchmark_group("parallel_sweep_matmul_n48");
    g.sample_size(10);
    g.bench_function("linear_1_2_4", |b| {
        b.iter(|| parallel_sweep_par(&ParMatMul, &cfg).expect("verified"));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_systolic_matmul,
    bench_systolic_givens,
    bench_scaling_series,
    bench_parallel_sweep
);
criterion_main!(benches);
