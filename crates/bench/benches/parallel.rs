//! Criterion benchmarks for the parallel architectures (experiments E8–E9).

use balance_core::{GrowthLaw, Words};
use balance_kernels::workload;
use balance_parallel::systolic::givens::triangularize;
use balance_parallel::systolic::matmul::systolic_matmul;
use balance_parallel::{linear_array_series, mesh_series, warp_cell};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_systolic_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("E9_systolic_matmul");
    for n in [8usize, 16, 32] {
        let a = workload::random_matrix(n, 1);
        let b = workload::random_matrix(n, 2);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, &n| {
            bench.iter(|| systolic_matmul(&a, &b, n));
        });
    }
    g.finish();
}

fn bench_systolic_givens(c: &mut Criterion) {
    let mut g = c.benchmark_group("E9_systolic_givens");
    for n in [8usize, 16, 32] {
        let a = workload::random_matrix(n, 3);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, &n| {
            bench.iter(|| triangularize(&a, n));
        });
    }
    g.finish();
}

fn bench_scaling_series(c: &mut Criterion) {
    let ps: Vec<u64> = (1..=64).collect();
    let law = GrowthLaw::Polynomial { degree: 2.0 };
    c.bench_function("E8_linear_array_series_64", |b| {
        b.iter(|| linear_array_series(warp_cell(), law, Words::new(4096), &ps).expect("series"));
    });
    c.bench_function("E9_mesh_series_64", |b| {
        b.iter(|| mesh_series(warp_cell(), law, Words::new(4096), &ps).expect("series"));
    });
}

criterion_group!(
    benches,
    bench_systolic_matmul,
    bench_systolic_givens,
    bench_scaling_series
);
criterion_main!(benches);
