//! Stack-distance engine benchmarks: the wall-clock case for one-pass
//! capacity sweeps.
//!
//! * `capacity_sweep_matmul_n96/engine_replay` — the reference executor:
//!   the 3·96³-address canonical matmul trace replayed through an actual
//!   LRU once per capacity, 16 capacities.
//! * `capacity_sweep_matmul_n96/engine_stackdist` — the same 16-point
//!   sweep from **one** replay through the Mattson engine (bit-identical
//!   points, pinned by property test).
//! * `capacity_sweep_matmul_n96/engine_stackdist_par` — the segmented
//!   parallel Mattson tier (`stackdist-par`, one time range per core),
//!   same bit-identical 16 points; on a multi-core runner the per-range
//!   passes overlap, and the boundary merge is the serial residue.
//! * `capacity_sweep_matmul_n96/engine_sampled` — the SHARDS-style
//!   hash-sampled tier at rate 1/16, the approximate engine E23 drives
//!   across a 10⁹-address trace.
//! * `stackdist/histogram_direct` vs `stackdist/lru_direct` — the
//!   per-access price of histogram accounting against a plain
//!   direct-indexed LRU replay at one capacity (the engine's log-factor
//!   overhead, which the sweep amortizes across its points).
//!
//! * `checkpoint_overhead/off` vs `checkpoint_overhead/every_2e24` vs
//!   `checkpoint_overhead/every_2e20` — the per-address price of the
//!   resumable replay's checkpoint countdown (PR 7): at the production
//!   default interval (2²⁴ addresses) the policy machinery must stay
//!   within ~5% of the plain replay; the 2²⁰ tier adds real image
//!   writes to show the amortized persistence cost. All three tiers get
//!   one untimed warm-up pass before any is timed (PR 8): `BENCH_7.json`
//!   recorded the baseline *slower* than the checkpointed replay because
//!   the first-run tier alone paid the cold-start cost.
//!
//! The medians land in `BENCH_8.json` via the bench-smoke script
//! (alongside the `bigtrace/*` wall-clocks E23 appends); the tentpole
//! target is `engine_replay / engine_stackdist ≥ 3×` on the 16-point
//! sweep, and checkpointing at the default interval within ~5% of
//! `checkpoint_overhead/off`.

use balance_kernels::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};

fn sweep_cfg(engine: Engine) -> SweepConfig {
    SweepConfig {
        n: 96,
        memories: (2..=17u32).map(|k| 1usize << k).collect(), // 16 points
        seed: 1,
        verify: Verify::None,
        engine,
        ..SweepConfig::default()
    }
}

fn bench_capacity_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("capacity_sweep_matmul_n96");
    g.sample_size(10);
    g.bench_function("engine_replay", |b| {
        b.iter(|| capacity_sweep(&MatMul, &sweep_cfg(Engine::Replay)).expect("traced"));
    });
    g.bench_function("engine_stackdist", |b| {
        b.iter(|| capacity_sweep(&MatMul, &sweep_cfg(Engine::StackDist)).expect("traced"));
    });
    g.bench_function("engine_stackdist_par", |b| {
        b.iter(|| {
            capacity_sweep(&MatMul, &sweep_cfg(Engine::StackDistPar { threads: 0 }))
                .expect("traced")
        });
    });
    g.bench_function("engine_sampled", |b| {
        b.iter(|| {
            capacity_sweep(&MatMul, &sweep_cfg(Engine::Sampled { shift: 4 })).expect("traced")
        });
    });
    g.finish();
}

fn bench_engine_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("stackdist");
    g.sample_size(10);
    let n = 96usize;
    let bound = 3 * (n as u64) * (n as u64);
    g.bench_function("histogram_direct", |b| {
        b.iter(|| {
            let mut engine = balance_machine::StackDistance::with_address_bound(bound);
            engine.observe_trace(balance_kernels::matmul::NaiveTrace::new(n).map(|a| a.addr));
            engine.into_profile()
        });
    });
    g.bench_function("lru_direct", |b| {
        b.iter(|| {
            let mut cache = balance_machine::LruCache::with_address_bound(3072, 1, bound);
            cache.run_trace(balance_kernels::matmul::NaiveTrace::new(n).map(|a| a.addr))
        });
    });
    g.finish();
}

fn bench_checkpoint_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("checkpoint_overhead");
    g.sample_size(10);
    let n = 96usize;
    let bound = 3 * (n as u64) * (n as u64);
    let len = 3 * (n as u64).pow(3);
    let fresh = move || balance_machine::StackDistance::with_address_bound(bound);
    let run_off = move || {
        let mut engine = fresh();
        engine.observe_trace(balance_kernels::matmul::NaiveTrace::new(n).map(|a| a.addr));
        engine.into_profile()
    };
    let dir = std::env::temp_dir().join(format!("balance-bench-ckpt-{}", std::process::id()));
    let policies: Vec<(u64, balance_machine::CheckpointPolicy)> = [1u64 << 24, 1 << 20]
        .into_iter()
        .map(|every| (every, balance_machine::CheckpointPolicy::every(dir.clone(), every)))
        .collect();
    let run_ckpt = move |policy: &balance_machine::CheckpointPolicy| {
        let mut ctl = balance_machine::ReplayControl::new("bench");
        ctl.policy = Some(policy);
        let (engine, _) = balance_machine::resumable_replay(
            len,
            balance_kernels::trace::AddrIter::new(balance_kernels::matmul::NaiveTrace::new(n)),
            fresh,
            &ctl,
        )
        .expect("no faults armed");
        engine.into_profile()
    };
    // One untimed pass of every tier before any is timed: all three then
    // share the same warmed allocator, trace generator, and checkpoint
    // directory, so run order can no longer masquerade as checkpoint
    // overhead (BENCH_7.json recorded `off` ~20% SLOWER than
    // `every_2e24` purely because `off` ran first, cold).
    criterion::black_box(run_off());
    for (_, policy) in &policies {
        criterion::black_box(run_ckpt(policy));
    }
    // Baseline: the plain uncheckpointed replay of the same trace.
    g.bench_function("off", |b| b.iter(run_off));
    for (every, policy) in &policies {
        g.bench_function(format!("every_2e{}", every.trailing_zeros()), |b| {
            b.iter(|| run_ckpt(policy));
        });
    }
    drop(policies);
    let _ = std::fs::remove_dir_all(&dir);
    g.finish();
}

criterion_group!(
    benches,
    bench_capacity_sweep,
    bench_engine_overhead,
    bench_checkpoint_overhead
);
criterion_main!(benches);
