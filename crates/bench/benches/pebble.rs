//! Criterion benchmarks for the pebble game (experiment E11).

use balance_pebble::builders::{fft_dag, matmul_dag, tree_dag};
use balance_pebble::optimal::minimum_io;
use balance_pebble::strategies::{blocked_fft_order, blocked_matmul_order};
use balance_pebble::{schedule_with_order, EvictionPolicy};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_matmul_schedule(c: &mut Criterion) {
    let dag = matmul_dag(8);
    let order = blocked_matmul_order(8, 2);
    c.bench_function("E11_pebble_matmul8_blocked", |b| {
        b.iter(|| {
            schedule_with_order(&dag, &order, 16, EvictionPolicy::Belady).expect("schedules")
        });
    });
}

fn bench_fft_schedule(c: &mut Criterion) {
    let dag = fft_dag(64);
    let order = blocked_fft_order(64, 8);
    c.bench_function("E11_pebble_fft64_blocked", |b| {
        b.iter(|| {
            schedule_with_order(&dag, &order, 24, EvictionPolicy::Belady).expect("schedules")
        });
    });
}

fn bench_exact_solver(c: &mut Criterion) {
    let dag = tree_dag(8);
    c.bench_function("E11_exact_minimum_io_tree8", |b| {
        b.iter(|| minimum_io(&dag, 4).expect("solvable"));
    });
}

criterion_group!(
    benches,
    bench_matmul_schedule,
    bench_fft_schedule,
    bench_exact_solver
);
criterion_main!(benches);
