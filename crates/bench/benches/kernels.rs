//! Criterion benchmarks for the instrumented kernels (experiments E2–E7):
//! wall-clock cost of the verified simulated runs across memory sizes.

use balance_kernels::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("E2_matmul");
    g.sample_size(10);
    for b in [4usize, 8, 16] {
        let m = 3 * b * b;
        g.bench_with_input(BenchmarkId::from_parameter(m), &m, |bench, &m| {
            bench.iter(|| MatMul.run(48, m, 1).expect("verified"));
        });
    }
    g.finish();
}

fn bench_triangularization(c: &mut Criterion) {
    let mut g = c.benchmark_group("E3_triangularization");
    g.sample_size(10);
    for m in [48usize, 300, 768] {
        g.bench_with_input(BenchmarkId::from_parameter(m), &m, |bench, &m| {
            bench.iter(|| Triangularization.run(48, m, 1).expect("verified"));
        });
    }
    g.finish();
}

fn bench_grid(c: &mut Criterion) {
    let mut g = c.benchmark_group("E4_grid");
    g.sample_size(10);
    for d in [1usize, 2, 3] {
        let kernel = GridRelaxation::new(d);
        let m = kernel.min_memory(8) * 4;
        g.bench_with_input(BenchmarkId::new("dim", d), &d, |bench, _| {
            bench.iter(|| kernel.run(8, m, 1).expect("verified"));
        });
    }
    g.finish();
}

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("E5_fft");
    g.sample_size(10);
    for m in [8usize, 32, 128] {
        g.bench_with_input(BenchmarkId::from_parameter(m), &m, |bench, &m| {
            bench.iter(|| Fft.run(1024, m, 1).expect("verified"));
        });
    }
    g.finish();
}

fn bench_sort(c: &mut Criterion) {
    let mut g = c.benchmark_group("E6_sort");
    g.sample_size(10);
    for m in [32usize, 128, 512] {
        g.bench_with_input(BenchmarkId::from_parameter(m), &m, |bench, &m| {
            bench.iter(|| ExternalSort.run(m * m, m, 1).expect("verified"));
        });
    }
    g.finish();
}

fn bench_io_bounded(c: &mut Criterion) {
    let mut g = c.benchmark_group("E7_io_bounded");
    g.sample_size(10);
    g.bench_function("matvec", |bench| {
        bench.iter(|| MatVec.run(64, 256, 1).expect("verified"));
    });
    g.bench_function("trisolve", |bench| {
        bench.iter(|| TriSolve.run(64, 256, 1).expect("verified"));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_matmul,
    bench_triangularization,
    bench_grid,
    bench_fft,
    bench_sort,
    bench_io_bounded
);
criterion_main!(benches);
