//! Profile-store benchmarks: the PR-10 serve and build tiers.
//!
//! * `profstore/serve_query_warm` — one `io` what-if query through the
//!   real `balance serve` session (`ServeSession::answer`) against a
//!   warm in-memory artifact: the path the batch service sustains.
//! * `store_query_throughput` — the headline queries/s figure, appended
//!   to the bench JSON through the same `"name": value` line protocol
//!   as the criterion shim and E23. The PR-10 acceptance bar is ≥ 10⁵
//!   queries/s.
//! * `store_build_registry` — median wall-clock (ns) of precomputing
//!   the full 11-kernel registry × {16, 32} grid into a fresh store
//!   (every image encoded, checksummed, and atomically published).

use std::time::{Duration, Instant};

use balance_bench::storecli::ServeSession;
use balance_kernels::prelude::*;
use balance_machine::{FaultPlan, ProfileStore};
use criterion::{criterion_group, criterion_main, Criterion};

const GRID: [usize; 2] = [16, 32];

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("kb-bench-profstore-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn bench_serve_query(c: &mut Criterion) {
    let dir = tmp_dir("serve");
    let store = ProfileStore::open(&dir).expect("temp store opens");
    let mut session = ServeSession::new(&store, TrafficModel::WORD, None, 1.0e9);
    // First answer repairs the miss and warms the in-memory artifact.
    let _ = session.answer("io matmul 32 64");
    let mut g = c.benchmark_group("profstore");
    let mut m = 16u64;
    g.bench_function("serve_query_warm", |b| {
        b.iter(|| {
            m = 16 + (m * 7 + 11) % 1024;
            session
                .answer(&format!("io matmul 32 {m}"))
                .expect("query answered")
        });
    });
    g.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Median wall-clock of `runs` evaluations of `f`.
fn median_of<O>(runs: usize, mut f: impl FnMut() -> O) -> Duration {
    let mut samples: Vec<Duration> = (0..runs)
        .map(|_| {
            let t = Instant::now();
            criterion::black_box(f());
            t.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

fn append_json(line: &str) {
    if let Some(path) = std::env::var_os("BENCH_JSON") {
        use std::io::Write as _;
        let written = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| f.write_all(line.as_bytes()));
        if let Err(e) = written {
            eprintln!("warning: BENCH_JSON write to {path:?} failed: {e}");
        }
    }
}

/// The two headline numbers, on the same line protocol the bench-smoke
/// script folds into `BENCH_<n>.json`.
fn report_headlines() {
    let smoke = std::env::var_os("BENCH_SMOKE").is_some();

    // Throughput: warm batch queries through the real serve session.
    let dir = tmp_dir("throughput");
    let store = ProfileStore::open(&dir).expect("temp store opens");
    let mut session = ServeSession::new(&store, TrafficModel::WORD, None, 1.0e9);
    let _ = session.answer("io matmul 32 64");
    let queries: u32 = if smoke { 20_000 } else { 200_000 };
    let elapsed = median_of(if smoke { 3 } else { 5 }, || {
        for i in 0..queries {
            let m = 16 + u64::from(i % 64) * 16;
            criterion::black_box(session.answer(&format!("io matmul 32 {m}")));
        }
    });
    let qps = f64::from(queries) / elapsed.as_secs_f64();
    println!(
        "bench: store_query_throughput                   {qps:.3e} queries/s \
         ({queries} warm io queries in {elapsed:?})"
    );
    append_json(&format!("\"store_query_throughput\": {:.0}\n", qps));
    let _ = std::fs::remove_dir_all(&dir);

    // Build: the full registry x grid into a fresh store each run.
    let kernels = registry();
    let build = median_of(3, || {
        let dir = tmp_dir("build");
        let store = ProfileStore::open(&dir).expect("temp store opens");
        let outcome = build_store(
            &store,
            &kernels,
            &GRID,
            TrafficModel::WORD,
            None,
            &FaultPlan::none(),
        )
        .expect("build completes");
        assert!(outcome.failed.is_empty(), "no grid point fails");
        let _ = std::fs::remove_dir_all(&dir);
        outcome.built
    });
    println!(
        "bench: store_build_registry                     {} ns \
         ({} kernels x {:?} grid)",
        build.as_nanos(),
        kernels.len(),
        GRID
    );
    append_json(&format!("\"store_build_registry\": {}\n", build.as_nanos()));
}

fn bench_headlines(_c: &mut Criterion) {
    report_headlines();
}

criterion_group!(benches, bench_serve_query, bench_headlines);
criterion_main!(benches);
