//! Criterion benchmarks for the core balance machinery (experiment E1):
//! law fitting, curve inversion, and the rebalancing solver.

use balance_core::fit::{fit_best, DataPoint};
use balance_core::solver::MeasuredCurve;
use balance_core::{rebalance, Alpha, IntensityModel, Words};
use criterion::{criterion_group, criterion_main, Criterion};

fn synthetic_points(n: usize) -> Vec<DataPoint> {
    (0..n)
        .map(|i| {
            let m = 32.0 * 1.5f64.powi(i as i32);
            DataPoint::new(m, 0.57 * m.sqrt())
        })
        .collect()
}

fn bench_fit(c: &mut Criterion) {
    let pts = synthetic_points(24);
    c.bench_function("E1_fit_best_24pts", |b| {
        b.iter(|| fit_best(std::hint::black_box(&pts)).expect("fits"));
    });
}

fn bench_curve_inversion(c: &mut Criterion) {
    let pts = synthetic_points(24);
    let curve = MeasuredCurve::new(&pts).expect("curve");
    c.bench_function("E1_empirical_rebalance", |b| {
        b.iter(|| curve.empirical_rebalance(3.0, 256.0).expect("solves"));
    });
}

fn bench_closed_form(c: &mut Criterion) {
    let model = IntensityModel::sqrt_m(0.577);
    let alpha = Alpha::new(4.0).expect("valid");
    c.bench_function("E1_rebalance_closed_form", |b| {
        b.iter(|| rebalance(&model, alpha, Words::new(4096)).expect("possible"));
    });
}

criterion_group!(benches, bench_fit, bench_curve_inversion, bench_closed_form);
criterion_main!(benches);
