//! Analytic-engine benchmarks: the wall-clock case for zero-replay sweeps.
//!
//! * `capacity_sweep_matmul_n96/engine_analytic` — the same 16-point
//!   matmul sweep the `stack_distance` bench times on the replay-based
//!   engines, drawn instead from the closed-form reuse-distance histogram
//!   (`Kernel::analytic_profile`, bit-identical points pinned by property
//!   test). No trace is generated; the cost is `O(n)` in the histogram
//!   piece count, independent of the 3·96³-address trace length.
//! * `analytic_vs_stackdist_speedup` — the headline ratio, appended to
//!   `BENCH_8.json` through the same `"name": value` line protocol the
//!   criterion shim and E23 use: median one-pass stack-distance sweep
//!   time over median analytic sweep time on the identical 16-point
//!   config. The PR-8 target is ≥ 100×; the ratio grows with `n` (the
//!   replay is Θ(n³), the histogram Θ(n)).

use std::time::{Duration, Instant};

use balance_kernels::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};

fn sweep_cfg(engine: Engine) -> SweepConfig {
    SweepConfig {
        n: 96,
        memories: (2..=17u32).map(|k| 1usize << k).collect(), // 16 points
        seed: 1,
        verify: Verify::None,
        engine,
        ..SweepConfig::default()
    }
}

fn bench_analytic_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("capacity_sweep_matmul_n96");
    g.sample_size(10);
    g.bench_function("engine_analytic", |b| {
        b.iter(|| capacity_sweep(&MatMul, &sweep_cfg(Engine::Analytic)).expect("covered"));
    });
    g.finish();
}

/// Median wall-clock of `runs` evaluations of `f`.
fn median_of<O>(runs: usize, mut f: impl FnMut() -> O) -> Duration {
    let mut samples: Vec<Duration> = (0..runs)
        .map(|_| {
            let t = Instant::now();
            criterion::black_box(f());
            t.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

/// Times the identical 16-point sweep on both tiers and appends the
/// dimensionless ratio as `analytic_vs_stackdist_speedup` (same line
/// protocol as the criterion shim / E23, folded into `BENCH_8.json` by
/// the bench-smoke script).
fn report_speedup() {
    // Warm both paths once so neither median pays the cold start.
    let _ = capacity_sweep(&MatMul, &sweep_cfg(Engine::StackDist)).expect("traced");
    let _ = capacity_sweep(&MatMul, &sweep_cfg(Engine::Analytic)).expect("covered");
    let stackdist = median_of(5, || {
        capacity_sweep(&MatMul, &sweep_cfg(Engine::StackDist)).expect("traced")
    });
    let analytic = median_of(101, || {
        capacity_sweep(&MatMul, &sweep_cfg(Engine::Analytic)).expect("covered")
    });
    let speedup = stackdist.as_nanos() / analytic.as_nanos().max(1);
    println!(
        "bench: analytic_vs_stackdist_speedup            {speedup}x \
         (stackdist {stackdist:?} / analytic {analytic:?}, n = 96, 16 points)"
    );
    if let Some(path) = std::env::var_os("BENCH_JSON") {
        use std::io::Write as _;
        let line = format!("\"analytic_vs_stackdist_speedup\": {speedup}\n");
        let written = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| f.write_all(line.as_bytes()));
        if let Err(e) = written {
            eprintln!("warning: BENCH_JSON write to {path:?} failed: {e}");
        }
    }
}

fn bench_speedup(_c: &mut Criterion) {
    report_speedup();
}

criterion_group!(benches, bench_analytic_sweep, bench_speedup);
criterion_main!(benches);
