//! Sweep-executor benchmarks: the wall-clock effect of the two measurement
//! engine optimizations on the matmul intensity sweep at `n = 96`.
//!
//! * `serial_full` — the pre-optimization baseline: one point at a time,
//!   every point recomputing the `O(n³)` reference.
//! * `serial_freivalds` — verification share removed (`O(n²)` anchored
//!   Freivalds checks), still serial.
//! * `parallel_freivalds` — the production configuration: the same points
//!   fanned out over `available_parallelism` scoped workers.
//!
//! On an `c`-core runner the parallel/freivalds configuration improves on
//! the serial/full baseline by roughly `c × (1 + verify share)`; the three
//! medians land in `BENCH_2.json` via the bench-smoke script so the ratio
//! is tracked across PRs.

use balance_kernels::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};

fn matmul_cfg(verify: Verify) -> SweepConfig {
    SweepConfig {
        n: 96,
        memories: [4usize, 6, 8, 12, 16, 24, 32, 48]
            .iter()
            .map(|b| 3 * b * b)
            .collect(),
        seed: 1,
        verify,
        engine: Engine::Replay,
        ..SweepConfig::default()
    }
}

fn bench_sweep_executors(c: &mut Criterion) {
    let mut g = c.benchmark_group("sweep_matmul_n96");
    g.sample_size(10);
    let full = matmul_cfg(Verify::Full);
    let cheap = matmul_cfg(Verify::Freivalds { rounds: 2 });
    g.bench_function("serial_full", |b| {
        b.iter(|| intensity_sweep(&MatMul, &full).expect("verified"));
    });
    g.bench_function("serial_freivalds", |b| {
        b.iter(|| intensity_sweep(&MatMul, &cheap).expect("verified"));
    });
    g.bench_function("parallel_freivalds", |b| {
        b.iter(|| intensity_sweep_par(&MatMul, &cheap).expect("verified"));
    });
    g.finish();
}

fn bench_hierarchy_sweep(c: &mut Criterion) {
    use balance_core::{LevelSpec, Words, WordsPerSec};
    let mut g = c.benchmark_group("hierarchy_sweep_matmul_n96");
    g.sample_size(10);
    let cfg = matmul_cfg(Verify::Freivalds { rounds: 2 });
    // The production two-level configuration: every transferred word also
    // walks a 16 K-word L2 model, so this bench prices the per-level
    // accounting against the flat parallel sweep above.
    let outer = [
        LevelSpec::new(Words::new(16384), WordsPerSec::new(1.0e7)).expect("valid level"),
    ];
    g.bench_function("two_level_parallel", |b| {
        b.iter(|| hierarchy_sweep_par(&MatMul, &cfg, &outer).expect("verified"));
    });
    g.finish();
}

fn bench_trace_streaming(c: &mut Criterion) {
    let mut g = c.benchmark_group("lru_trace");
    g.sample_size(10);
    // The E13 inner loop at a size whose trace (3n³ = 6M addresses) would
    // be 48 MB materialized: stream it through both cache backends.
    let n = 128usize;
    let bound = 3 * (n as u64) * (n as u64);
    g.bench_function("direct_indexed", |b| {
        b.iter(|| {
            let mut cache = balance_machine::LruCache::with_address_bound(3072, 1, bound);
            cache.run_trace(balance_kernels::matmul::NaiveTrace::new(n).map(|a| a.addr))
        });
    });
    g.bench_function("hashed_fallback", |b| {
        b.iter(|| {
            let mut cache = balance_machine::LruCache::new(3072, 1);
            cache.run_trace(balance_kernels::matmul::NaiveTrace::new(n).map(|a| a.addr))
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_sweep_executors,
    bench_hierarchy_sweep,
    bench_trace_streaming
);
criterion_main!(benches);
