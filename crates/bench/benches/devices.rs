//! Device-traffic benchmarks: the wall-clock price of line granularity
//! and the dirty-write-back ledger (PR 9).
//!
//! * `line_granular_sweep/engine_stackdist_word` — the word-granular
//!   baseline: the 16-point matmul `n = 96` one-pass sweep on the legacy
//!   miss-curve path (same config `stack_distance` times).
//! * `line_granular_sweep/engine_stackdist_line8` — the identical sweep
//!   under the device model (8-word lines, write-backs ledgered): one
//!   tagged pass yields both the read and write-back curves. The ledger's
//!   overhead over the word baseline is the dirty-chain accounting.
//! * `line_granular_sweep/engine_replay_line8` — the dirty-LRU replay
//!   reference (one tagged replay per capacity, bit-identical points
//!   pinned by property test), the sweep the one-pass tier amortizes.
//!
//! `blocked_vs_naive_line_win` is the PR-9 headline ratio, appended to
//! `BENCH_9.json` through the same `"name": value` line protocol the
//! criterion shim and E23 use: how much more blocked matmul beats naive
//! at 8-word lines than at word granularity (E26 measures ~8.7× at
//! `n = 48`, `b = 8`, `M = 256` — tiles use every word of every fetched
//! line, naive's stride-`n` walk through `B` wastes 7 of 8).

use balance_bench::experiments::devices::blocked_vs_naive_line_win;
use balance_kernels::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};

fn sweep_cfg(engine: Engine, model: TrafficModel) -> SweepConfig {
    SweepConfig {
        n: 96,
        memories: (2..=17u32).map(|k| 1usize << k).collect(), // 16 points
        seed: 1,
        verify: Verify::None,
        engine,
        ..SweepConfig::default()
    }
    .with_traffic(model)
}

fn bench_line_granular_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("line_granular_sweep");
    g.sample_size(10);
    g.bench_function("engine_stackdist_word", |b| {
        b.iter(|| {
            capacity_sweep(&MatMul, &sweep_cfg(Engine::StackDist, TrafficModel::WORD))
                .expect("traced")
        });
    });
    g.bench_function("engine_stackdist_line8", |b| {
        b.iter(|| {
            capacity_sweep(&MatMul, &sweep_cfg(Engine::StackDist, TrafficModel::device(8)))
                .expect("traced")
        });
    });
    g.bench_function("engine_replay_line8", |b| {
        b.iter(|| {
            capacity_sweep(&MatMul, &sweep_cfg(Engine::Replay, TrafficModel::device(8)))
                .expect("traced")
        });
    });
    g.finish();
}

/// Computes the E26 line-win ratio once and appends it as
/// `blocked_vs_naive_line_win` (dimensionless, > 1 means lines reward
/// blocking beyond the word-granular prediction).
fn report_line_win() {
    let win = blocked_vs_naive_line_win(48, 8, 256);
    println!(
        "bench: blocked_vs_naive_line_win                {win:.2}x \
         (naive/blocked read words at 8-word lines over 1-word, n = 48, b = 8, M = 256)"
    );
    if let Some(path) = std::env::var_os("BENCH_JSON") {
        use std::io::Write as _;
        let line = format!("\"blocked_vs_naive_line_win\": {win:.2}\n");
        let written = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| f.write_all(line.as_bytes()));
        if let Err(e) = written {
            eprintln!("warning: BENCH_JSON write to {path:?} failed: {e}");
        }
    }
}

fn bench_line_win(_c: &mut Criterion) {
    report_line_win();
}

criterion_group!(benches, bench_line_granular_sweep, bench_line_win);
criterion_main!(benches);
