//! Property-based tests: the out-of-core kernels agree with naive references
//! for arbitrary (small) problem sizes, memory sizes, and seeds — and their
//! cost accounting obeys structural invariants.

use balance_core::IntensityModel;
use balance_kernels::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Blocked matmul verifies (internally, against naive) for arbitrary
    /// shapes and memory sizes, and its op count is exactly 2n³.
    #[test]
    fn matmul_correct_for_any_blocking(n in 1usize..24, m in 3usize..600, seed in 0u64..50) {
        let run = MatMul.run(n, m, seed).unwrap();
        prop_assert_eq!(run.execution.cost.comp_ops(), 2 * (n as u64).pow(3));
        prop_assert!(run.execution.peak_memory.get() as usize <= m);
    }

    /// Blocked LU verifies for arbitrary shapes/memories.
    #[test]
    fn lu_correct_for_any_blocking(n in 1usize..20, m in 3usize..400, seed in 0u64..50) {
        let run = Triangularization.run(n, m, seed).unwrap();
        prop_assert!(run.execution.peak_memory.get() as usize <= m);
    }

    /// External sort verifies (sortedness + permutation) for arbitrary
    /// sizes; I/O is a multiple of 2n (each word crosses in and out once
    /// per level).
    #[test]
    fn sort_correct_and_io_is_leveled(n in 1usize..600, m in 8usize..128, seed in 0u64..50) {
        let run = ExternalSort.run(n, m, seed).unwrap();
        let io = run.execution.cost.io_words();
        prop_assert_eq!(io % (2 * n as u64), 0, "io {} not a multiple of 2n", io);
        prop_assert!(run.execution.peak_memory.get() as usize <= m);
    }

    /// Blocked FFT verifies against the reference for any power-of-two size
    /// and block size.
    #[test]
    fn fft_correct_for_any_blocking(logn in 1u32..9, m in 4usize..256, seed in 0u64..50) {
        let n = 1usize << logn;
        let run = Fft.run(n, m, seed).unwrap();
        let t = u64::from(logn);
        prop_assert_eq!(run.execution.cost.comp_ops(), 12 * (n as u64 / 2) * t);
    }

    /// Grid relaxation verifies (bit-exact halo plumbing) for every
    /// dimension and arbitrary iteration counts.
    #[test]
    fn grid_correct_for_all_dims(d in 1usize..=4, iters in 1usize..6, extra in 0usize..200, seed in 0u64..50) {
        let k = GridRelaxation::new(d);
        let m = k.min_memory(iters) + extra;
        let run = k.run(iters, m, seed).unwrap();
        let s = k.tile_side(m) as u64;
        let expected_ops = iters as u64 * (2 * d as u64 + 1) * s.pow(d as u32);
        prop_assert_eq!(run.execution.cost.comp_ops(), expected_ops);
    }

    /// Matvec and trisolve verify and stay I/O-bounded: intensity never
    /// exceeds the constant bound regardless of memory.
    #[test]
    fn io_bounded_kernels_saturate(n in 4usize..48, m in 4usize..2000, seed in 0u64..50) {
        let mv = MatVec.run(n, m.max(3), seed).unwrap();
        prop_assert!(mv.intensity() <= 2.01, "matvec intensity {}", mv.intensity());
        let ts = TriSolve.run(n, m.max(4), seed).unwrap();
        prop_assert!(ts.intensity() <= 2.6, "trisolve intensity {}", ts.intensity());
    }

    /// More memory never decreases measured intensity (the monotonicity the
    /// rebalancing argument relies on), modulo blocking granularity.
    #[test]
    fn intensity_weakly_monotone_in_memory(seed in 0u64..20) {
        let n = 32;
        let mut last = 0.0f64;
        for m in [27usize, 108, 432, 1728] { // 4x steps: b doubles exactly
            let r = MatMul.run(n, m, seed).unwrap().intensity();
            prop_assert!(r >= last * 0.999, "m={m}: {r} < {last}");
            last = r;
        }
    }

    /// Analytic cost models track measured costs within a factor of two
    /// across the operating range (they share the Θ-shape).
    #[test]
    fn analytic_tracks_measured(m in 12usize..400, seed in 0u64..10) {
        let n = 24;
        let run = MatMul.run(n, m, seed).unwrap();
        let analytic = MatMul.analytic_cost(n, m);
        let ratio = run.execution.cost.io_words() as f64 / analytic.io_words() as f64;
        prop_assert!((0.5..2.0).contains(&ratio), "io ratio {ratio}");
    }
}

#[test]
fn intensity_models_match_paper_shapes() {
    // A non-random structural check over the whole registry.
    for k in all_kernels() {
        let model = k.intensity_model();
        match k.name() {
            "matmul" | "triangularization" | "grid2d" => {
                assert!(
                    matches!(model, IntensityModel::Power { exponent, .. } if (exponent - 0.5).abs() < 1e-9),
                    "{} should be sqrt-shaped",
                    k.name()
                );
            }
            "grid3d" => {
                assert!(
                    matches!(model, IntensityModel::Power { exponent, .. } if (exponent - 1.0/3.0).abs() < 1e-9)
                );
            }
            "fft" | "sort" => {
                assert!(matches!(model, IntensityModel::Log2 { .. }));
            }
            "matvec" | "trisolve" => {
                assert!(matches!(model, IntensityModel::Constant { .. }));
            }
            other => panic!("unexpected kernel {other}"),
        }
    }
}
