//! Property-based tests: the out-of-core kernels agree with naive references
//! for arbitrary (small) problem sizes, memory sizes, and seeds — and their
//! cost accounting obeys structural invariants.

use balance_core::{HierarchySpec, IntensityModel, LevelSpec, Words, WordsPerSec};
use balance_kernels::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Blocked matmul verifies (internally, against naive) for arbitrary
    /// shapes and memory sizes, and its op count is exactly 2n³.
    #[test]
    fn matmul_correct_for_any_blocking(n in 1usize..24, m in 3usize..600, seed in 0u64..50) {
        let run = MatMul.run(n, m, seed).unwrap();
        prop_assert_eq!(run.execution.cost.comp_ops(), 2 * (n as u64).pow(3));
        prop_assert!(run.execution.peak_memory.get() as usize <= m);
    }

    /// Blocked LU verifies for arbitrary shapes/memories.
    #[test]
    fn lu_correct_for_any_blocking(n in 1usize..20, m in 3usize..400, seed in 0u64..50) {
        let run = Triangularization.run(n, m, seed).unwrap();
        prop_assert!(run.execution.peak_memory.get() as usize <= m);
    }

    /// External sort verifies (sortedness + permutation) for arbitrary
    /// sizes; I/O is a multiple of 2n (each word crosses in and out once
    /// per level).
    #[test]
    fn sort_correct_and_io_is_leveled(n in 1usize..600, m in 8usize..128, seed in 0u64..50) {
        let run = ExternalSort.run(n, m, seed).unwrap();
        let io = run.execution.cost.io_words();
        prop_assert_eq!(io % (2 * n as u64), 0, "io {} not a multiple of 2n", io);
        prop_assert!(run.execution.peak_memory.get() as usize <= m);
    }

    /// Blocked FFT verifies against the reference for any power-of-two size
    /// and block size.
    #[test]
    fn fft_correct_for_any_blocking(logn in 1u32..9, m in 4usize..256, seed in 0u64..50) {
        let n = 1usize << logn;
        let run = Fft.run(n, m, seed).unwrap();
        let t = u64::from(logn);
        prop_assert_eq!(run.execution.cost.comp_ops(), 12 * (n as u64 / 2) * t);
    }

    /// Grid relaxation verifies (bit-exact halo plumbing) for every
    /// dimension and arbitrary iteration counts.
    #[test]
    fn grid_correct_for_all_dims(d in 1usize..=4, iters in 1usize..6, extra in 0usize..200, seed in 0u64..50) {
        let k = GridRelaxation::new(d);
        let m = k.min_memory(iters) + extra;
        let run = k.run(iters, m, seed).unwrap();
        let s = k.tile_side(m) as u64;
        let expected_ops = iters as u64 * (2 * d as u64 + 1) * s.pow(d as u32);
        prop_assert_eq!(run.execution.cost.comp_ops(), expected_ops);
    }

    /// Matvec and trisolve verify and stay I/O-bounded: intensity never
    /// exceeds the constant bound regardless of memory.
    #[test]
    fn io_bounded_kernels_saturate(n in 4usize..48, m in 4usize..2000, seed in 0u64..50) {
        let mv = MatVec.run(n, m.max(3), seed).unwrap();
        prop_assert!(mv.intensity() <= 2.01, "matvec intensity {}", mv.intensity());
        let ts = TriSolve.run(n, m.max(4), seed).unwrap();
        prop_assert!(ts.intensity() <= 2.6, "trisolve intensity {}", ts.intensity());
    }

    /// More memory never decreases measured intensity (the monotonicity the
    /// rebalancing argument relies on), modulo blocking granularity.
    #[test]
    fn intensity_weakly_monotone_in_memory(seed in 0u64..20) {
        let n = 32;
        let mut last = 0.0f64;
        for m in [27usize, 108, 432, 1728] { // 4x steps: b doubles exactly
            let r = MatMul.run(n, m, seed).unwrap().intensity();
            prop_assert!(r >= last * 0.999, "m={m}: {r} < {last}");
            last = r;
        }
    }

    /// Analytic cost models track measured costs within a factor of two
    /// across the operating range (they share the Θ-shape).
    #[test]
    fn analytic_tracks_measured(m in 12usize..400, seed in 0u64..10) {
        let n = 24;
        let run = MatMul.run(n, m, seed).unwrap();
        let analytic = MatMul.analytic_cost(n, m);
        let ratio = run.execution.cost.io_words() as f64 / analytic.io_words() as f64;
        prop_assert!((0.5..2.0).contains(&ratio), "io ratio {ratio}");
    }

    /// The streaming naive trace yields exactly the sequence the old
    /// materializing generator produced, and its `ExactSizeIterator::len`
    /// stays truthful at every step.
    #[test]
    fn naive_trace_streams_the_materialized_sequence(n in 0usize..14) {
        // The pre-streaming generator, verbatim, as the oracle — the A/B
        // streams read, the C accumulation tagged a write.
        let n2 = (n * n) as u64;
        let mut want = Vec::with_capacity(3 * n * n * n);
        for i in 0..n as u64 {
            for j in 0..n as u64 {
                for k in 0..n as u64 {
                    want.push(balance_core::Access::read(i * n as u64 + k));
                    want.push(balance_core::Access::read(n2 + k * n as u64 + j));
                    want.push(balance_core::Access::write(2 * n2 + i * n as u64 + j));
                }
            }
        }
        let mut it = balance_kernels::matmul::NaiveTrace::new(n);
        prop_assert_eq!(it.len(), 3 * n * n * n);
        let mut got = Vec::with_capacity(it.len());
        while let Some(a) = it.next() {
            got.push(a);
            prop_assert_eq!(it.len(), want.len() - got.len());
        }
        prop_assert_eq!(got, want);
    }

    /// Same pin for the blocked trace, across ragged tile sides (b > n,
    /// b ∤ n, b = 1 all included in the ranges).
    #[test]
    fn blocked_trace_streams_the_materialized_sequence(n in 1usize..14, b in 1usize..17) {
        let n2 = (n * n) as u64;
        let mut want = Vec::new();
        for i0 in (0..n).step_by(b) {
            let ib = b.min(n - i0);
            for j0 in (0..n).step_by(b) {
                let jb = b.min(n - j0);
                for k0 in (0..n).step_by(b) {
                    let kb = b.min(n - k0);
                    for i in i0..i0 + ib {
                        for k in k0..k0 + kb {
                            for j in j0..j0 + jb {
                                want.push(balance_core::Access::read((i * n + k) as u64));
                                want.push(balance_core::Access::read(n2 + (k * n + j) as u64));
                                want.push(balance_core::Access::write(2 * n2 + (i * n + j) as u64));
                            }
                        }
                    }
                }
            }
        }
        let it = balance_kernels::matmul::BlockedTrace::new(n, b);
        prop_assert_eq!(it.len(), 3 * n * n * n);
        let got: Vec<balance_core::Access> = it.collect();
        prop_assert_eq!(got, want);
    }

    /// `size_hint()` honesty for the streaming traces: exact (lower ==
    /// upper == remaining) at construction and after any partial
    /// consumption — the one-pass engine pre-allocates from `len()`, so a
    /// drifting hint would mis-size its tables.
    #[test]
    fn trace_size_hints_are_exact_under_partial_consumption(
        n in 0usize..10,
        b in 1usize..12,
        skip in 0usize..64,
    ) {
        let total = 3 * n * n * n;
        let mut naive = balance_kernels::matmul::NaiveTrace::new(n);
        let mut blocked = balance_kernels::matmul::BlockedTrace::new(n, b);
        prop_assert_eq!(naive.size_hint(), (total, Some(total)));
        prop_assert_eq!(blocked.size_hint(), (total, Some(total)));
        // Consume a prefix (nth also exercises the non-`next` path).
        let consumed = skip.min(total);
        if consumed > 0 {
            let _ = naive.nth(consumed - 1);
            let _ = blocked.nth(consumed - 1);
        }
        let left = total - consumed;
        prop_assert_eq!(naive.size_hint(), (left, Some(left)));
        prop_assert_eq!(blocked.size_hint(), (left, Some(left)));
        prop_assert_eq!(naive.len(), left);
        prop_assert_eq!(blocked.len(), left);
        // And the hint stays truthful down to exhaustion.
        prop_assert_eq!(naive.count(), left);
        prop_assert_eq!(blocked.count(), left);
    }

    /// Freivalds verification accepts every run the full reference check
    /// accepts, and both modes measure identical cost profiles.
    #[test]
    fn freivalds_agrees_with_full_verification(n in 1usize..28, m in 3usize..600, seed in 0u64..30) {
        let full = MatMul.run_with(n, m, seed, Verify::Full).unwrap();
        let cheap = MatMul.run_with(n, m, seed, Verify::Freivalds { rounds: 2 }).unwrap();
        let skipped = MatMul.run_with(n, m, seed, Verify::None).unwrap();
        prop_assert_eq!(full, cheap);
        prop_assert_eq!(full, skipped);
        let lu_full = Triangularization.run_with(n, m, seed, Verify::Full).unwrap();
        let lu_cheap = Triangularization.run_with(n, m, seed, Verify::Freivalds { rounds: 2 }).unwrap();
        prop_assert_eq!(lu_full, lu_cheap);
    }

    /// The parallel sweep executor is bit-identical to the serial one for
    /// arbitrary configs (same points, same order, same anchor).
    #[test]
    fn parallel_sweep_matches_serial(n in 4usize..24, seed in 0u64..20, hi in 6u32..10) {
        let cfg = SweepConfig::pow2(n, 2, hi, seed).with_verify(Verify::auto(n));
        let serial = intensity_sweep(&MatMul, &cfg).unwrap();
        let par = intensity_sweep_par(&MatMul, &cfg).unwrap();
        prop_assert_eq!(serial.runs, par.runs);
        for (s, p) in serial.points.iter().zip(&par.points) {
            prop_assert_eq!(s.memory.to_bits(), p.memory.to_bits());
            prop_assert_eq!(s.ratio.to_bits(), p.ratio.to_bits());
        }
    }

    /// The one-pass capacity sweep is bit-identical to the per-capacity
    /// replay — `CapacityProfile::io_at(M)` ≡ per-word `LruCache` replay
    /// misses — across the whole kernel registry (paper kernels and
    /// extensions) at 4+ capacities, serial and parallel executors alike.
    #[test]
    fn capacity_sweep_engines_bit_identical_across_registry(
        kernel_idx in 0usize..11,
        seed in 0u64..8,
    ) {
        let mut kernels = all_kernels();
        kernels.extend(extension_kernels());
        let kernel = &kernels[kernel_idx];
        let n = 8; // power of two: every kernel (incl. fft) has a trace
        let cfg = SweepConfig {
            n,
            memories: vec![2, 8, 32, 128, 512],
            seed,
            verify: Verify::Full,
            engine: Engine::Replay,
            ..SweepConfig::default()
        };
        let replay = capacity_sweep(&**kernel, &cfg).unwrap();
        let onepass =
            capacity_sweep(&**kernel, &cfg.clone().with_engine(Engine::StackDist)).unwrap();
        prop_assert_eq!(&replay.runs, &onepass.runs, "kernel {}", kernel.name());
        for (r, o) in replay.points.iter().zip(&onepass.points) {
            prop_assert_eq!(r.memory.to_bits(), o.memory.to_bits());
            prop_assert_eq!(r.ratio.to_bits(), o.ratio.to_bits());
        }
        let par = capacity_sweep_par(&**kernel, &cfg).unwrap();
        prop_assert_eq!(&replay.runs, &par.runs);
        // The scaled tiers hold the same contract: segmented parallel
        // Mattson is bit-identical at any thread count, and sampling at
        // rate 1 (shift 0) degenerates to the exact serial engine.
        for threads in [1usize, 3] {
            let seg = capacity_sweep(
                &**kernel,
                &cfg.clone().with_engine(Engine::StackDistPar { threads }),
            )
            .unwrap();
            prop_assert_eq!(
                &replay.runs, &seg.runs,
                "kernel {}, {} segments", kernel.name(), threads
            );
        }
        let full_rate =
            capacity_sweep(&**kernel, &cfg.clone().with_engine(Engine::Sampled { shift: 0 }))
                .unwrap();
        prop_assert_eq!(&replay.runs, &full_rate.runs, "kernel {}", kernel.name());
        // The zero-replay analytic tier joins the bit-identity contract
        // wherever a kernel derives a histogram (9 of the 11 at n = 8).
        if kernel.analytic_profile(n).is_some() {
            let analytic =
                capacity_sweep(&**kernel, &cfg.clone().with_engine(Engine::Analytic)).unwrap();
            prop_assert_eq!(&replay.runs, &analytic.runs, "kernel {}", kernel.name());
        }
        // Monotone: a bigger cache never misses more (the stack property,
        // as it surfaces in the emitted sweep).
        for w in replay.runs.windows(2) {
            prop_assert!(
                w[1].execution.cost.io_words() <= w[0].execution.cost.io_words(),
                "kernel {}", kernel.name()
            );
        }
    }

    /// The multi-level reader satisfies inclusion and matches a real
    /// `Hierarchy` ladder replay across the registry.
    #[test]
    fn hierarchy_capacity_sweep_matches_ladder_across_registry(
        kernel_idx in 0usize..11,
        l2 in 64u64..256,
        l3_factor in 2u64..6,
    ) {
        let mut kernels = all_kernels();
        kernels.extend(extension_kernels());
        let kernel = &kernels[kernel_idx];
        let outer = [
            LevelSpec::new(Words::new(l2), WordsPerSec::new(1.0)).unwrap(),
            LevelSpec::new(Words::new(l2 * l3_factor), WordsPerSec::new(1.0)).unwrap(),
        ];
        let cfg = SweepConfig {
            n: 8,
            memories: vec![3, 12, 48],
            seed: 0,
            verify: Verify::Full,
            engine: Engine::StackDist,
            ..SweepConfig::default()
        };
        let onepass = hierarchy_capacity_sweep(&**kernel, &cfg, &outer).unwrap();
        let replay = hierarchy_capacity_sweep(
            &**kernel,
            &cfg.clone().with_engine(Engine::Replay),
            &outer,
        )
        .unwrap();
        prop_assert_eq!(&onepass.runs, &replay.runs, "kernel {}", kernel.name());
        for run in &onepass.runs {
            prop_assert_eq!(run.execution.cost.level_count(), 3);
            prop_assert!(
                run.execution.cost.traffic().is_monotone_non_increasing(),
                "kernel {}: {}", kernel.name(), run.execution.cost.traffic()
            );
        }
    }

    /// The analytic tier's core contract, across the whole registry and
    /// the full testable size range: wherever a kernel derives a
    /// closed-form histogram, finalizing it yields a `CapacityProfile`
    /// structurally equal to the stack-distance replay of the canonical
    /// trace — hence bit-identical `misses_at(M)` at *every* capacity
    /// (additionally spot-pinned below at M = 0 and past saturation). And
    /// no kernel may claim a histogram for a size where it has no trace.
    #[test]
    fn analytic_profiles_bit_exact_across_registry(
        kernel_idx in 0usize..11,
        n in 0usize..20,
    ) {
        let mut kernels = all_kernels();
        kernels.extend(extension_kernels());
        let kernel = &kernels[kernel_idx];
        match (kernel.analytic_profile(n), kernel.access_trace(n)) {
            (None, _) => {} // no derivation at this size: falls through
            (Some(_), None) => prop_assert!(
                false,
                "kernel {} claims an analytic profile at n = {} without a trace",
                kernel.name(), n
            ),
            (Some(analytic), Some(trace)) => {
                let engine = balance_machine::StackDistance::profile_of(trace.into_addrs());
                let built = analytic.into_profile();
                prop_assert_eq!(&built, &engine, "kernel {} at n = {}", kernel.name(), n);
                prop_assert!(built.is_exact(), "kernel {}", kernel.name());
                prop_assert_eq!(built.misses_at(0), built.accesses());
                prop_assert_eq!(built.misses_at(u64::MAX), built.compulsory_misses());
                for m in 0..=built.saturating_capacity() + 2 {
                    prop_assert_eq!(
                        built.misses_at(m), engine.misses_at(m),
                        "kernel {} at n = {}, M = {}", kernel.name(), n, m
                    );
                }
            }
        }
    }

    /// Every registry kernel exposes a canonical trace whose declared
    /// length and address bound are exact — the contract the one-pass
    /// engine pre-sizes from.
    #[test]
    fn registry_traces_report_exact_length_and_bound(kernel_idx in 0usize..11) {
        let mut kernels = all_kernels();
        kernels.extend(extension_kernels());
        let kernel = &kernels[kernel_idx];
        let trace = kernel.access_trace(8).expect("registry kernels have traces at n = 8");
        let (len, bound) = (trace.len(), trace.addr_bound());
        let mut count = 0u64;
        for a in trace.into_addrs() {
            prop_assert!(a < bound, "kernel {}: address {} >= bound {}", kernel.name(), a, bound);
            count += 1;
        }
        prop_assert_eq!(count, len, "kernel {}", kernel.name());
    }

    /// One-level backward compatibility, pinned across the whole registry:
    /// for every kernel, `run_with(n, m, …)` and `run_on` with a flat spec
    /// produce bit-identical `KernelRun`s, and the execution is a one-level
    /// profile whose scalar `io_words` equals its boundary-0 traffic.
    #[test]
    fn flat_run_on_is_bit_identical_to_run_with(
        kernel_idx in 0usize..8,
        m in 8usize..512,
        seed in 0u64..20,
    ) {
        let kernels = all_kernels();
        let kernel = &kernels[kernel_idx];
        // A size every kernel accepts (fft needs a power of two).
        let n = 16;
        let m = m.max(kernel.min_memory(n));
        let classic = kernel.run_with(n, m, seed, Verify::auto(n)).unwrap();
        let flat = kernel
            .run_on(n, &HierarchySpec::flat_words(m), seed, Verify::auto(n))
            .unwrap();
        prop_assert_eq!(classic, flat, "kernel {}", kernel.name());
        prop_assert_eq!(classic.execution.cost.level_count(), 1);
        prop_assert_eq!(
            classic.execution.cost.io_at(0),
            Some(classic.execution.cost.io_words())
        );
    }

    /// The device model's safety net, across the whole registry: at
    /// 1-word lines the device read stream *is* the word-granular miss
    /// curve — `read_at(0)` equals the legacy sweep's `io_words()` at
    /// every capacity, on both tagged engines — and the read-only
    /// `line_words = 1` model (`TrafficModel::WORD`) routes through the
    /// legacy path bit-identically.
    #[test]
    fn device_unit_line_reads_match_word_sweeps_across_registry(
        kernel_idx in 0usize..11,
        seed in 0u64..8,
    ) {
        let mut kernels = all_kernels();
        kernels.extend(extension_kernels());
        let kernel = &kernels[kernel_idx];
        let cfg = SweepConfig {
            n: 8,
            memories: vec![2, 8, 32, 128, 512],
            seed,
            verify: Verify::None,
            engine: Engine::StackDist,
            ..SweepConfig::default()
        };
        let word = capacity_sweep(&**kernel, &cfg).unwrap();
        let tagged = capacity_sweep(
            &**kernel,
            &cfg.clone().with_traffic(TrafficModel::WORD),
        )
        .unwrap();
        prop_assert_eq!(&word.runs, &tagged.runs, "kernel {}", kernel.name());
        let unit = capacity_sweep(
            &**kernel,
            &cfg.clone().with_traffic(TrafficModel::device(1)),
        )
        .unwrap();
        let unit_replay = capacity_sweep(
            &**kernel,
            &cfg.clone()
                .with_engine(Engine::Replay)
                .with_traffic(TrafficModel::device(1)),
        )
        .unwrap();
        prop_assert_eq!(&unit.runs, &unit_replay.runs, "kernel {}", kernel.name());
        for (w, u) in word.runs.iter().zip(&unit.runs) {
            prop_assert_eq!(
                Some(w.execution.cost.io_words()),
                u.execution.cost.read_at(0),
                "kernel {} at M = {}", kernel.name(), w.m
            );
        }
    }

    /// The one-pass write-back ledger is bit-identical to a dirty-bit
    /// `LruCache` replay of the tagged trace (final flush included) at
    /// every capacity, across the registry and line sizes, on both the
    /// hashed and direct-indexed cache backends.
    #[test]
    fn writeback_ledger_matches_dirty_lru_replay_across_registry(
        kernel_idx in 0usize..11,
        lw_idx in 0usize..3,
        cap_lines in 1usize..96,
    ) {
        let mut kernels = all_kernels();
        kernels.extend(extension_kernels());
        let kernel = &kernels[kernel_idx];
        let lw = [1u64, 2, 8][lw_idx];
        let trace = kernel.access_trace(8).expect("registry traces exist at n = 8");
        let bound = trace.addr_bound();
        let profile = balance_machine::StackDistance::traffic_profile_of(
            trace.into_accesses(),
            lw,
        );
        let m = cap_lines as u64 * lw;
        let trace = kernel.access_trace(8).unwrap();
        let mut fx = balance_machine::LruCache::new(cap_lines, lw);
        let (misses, wbs) = fx.run_tagged_trace(trace.into_accesses());
        prop_assert_eq!(
            (profile.read_misses_at(m), profile.writebacks_at(m)),
            (misses, wbs),
            "kernel {}, line {}, M = {}", kernel.name(), lw, m
        );
        let trace = kernel.access_trace(8).unwrap();
        let mut direct =
            balance_machine::LruCache::with_address_bound(cap_lines, lw, bound.max(1));
        prop_assert_eq!(
            direct.run_tagged_trace(trace.into_accesses()),
            (misses, wbs),
            "kernel {}, line {}, M = {} (direct)", kernel.name(), lw, m
        );
    }

    /// `writebacks_at(M)` is monotone non-increasing in `M` with the
    /// end-of-run flush as its floor: no capacity, however large, avoids
    /// writing each distinct dirty line back once.
    #[test]
    fn writebacks_monotone_with_flush_floor_across_registry(
        kernel_idx in 0usize..11,
        lw_idx in 0usize..3,
    ) {
        let mut kernels = all_kernels();
        kernels.extend(extension_kernels());
        let kernel = &kernels[kernel_idx];
        let lw = [1u64, 2, 8][lw_idx];
        let trace = kernel.access_trace(8).expect("registry traces exist at n = 8");
        let profile =
            balance_machine::StackDistance::traffic_profile_of(trace.into_accesses(), lw);
        let floor = profile.written_lines();
        let mut last = profile.writebacks_at(0);
        for cap_lines in 0u64..256 {
            let wb = profile.writebacks_at(cap_lines * lw);
            prop_assert!(
                wb <= last,
                "kernel {}, line {}: wb({}) = {} > {}",
                kernel.name(), lw, cap_lines * lw, wb, last
            );
            prop_assert!(wb >= floor, "kernel {}, line {}", kernel.name(), lw);
            last = wb;
        }
        prop_assert_eq!(
            profile.writebacks_at(u64::MAX), floor,
            "kernel {}, line {}", kernel.name(), lw
        );
    }

    /// Hierarchy runs change only the *accounting depth*: the computation,
    /// its port traffic, ops, and peak memory are identical to the flat
    /// run at the same `M_1`, the traffic vector is inclusive, and deeper
    /// levels (being larger) see no more than the port.
    #[test]
    fn hierarchy_run_preserves_flat_measurement_at_the_port(
        kernel_idx in 0usize..8,
        m in 8usize..256,
        l2_factor in 2u64..8,
        seed in 0u64..20,
    ) {
        let kernels = all_kernels();
        let kernel = &kernels[kernel_idx];
        let n = 16;
        let m = m.max(kernel.min_memory(n));
        let spec = HierarchySpec::new(vec![
            LevelSpec::new(Words::new(m as u64), WordsPerSec::new(2.0)).unwrap(),
            LevelSpec::new(Words::new(m as u64 * l2_factor), WordsPerSec::new(1.0)).unwrap(),
        ]).unwrap();
        let flat = kernel.run_with(n, m, seed, Verify::auto(n)).unwrap();
        let hier = kernel.run_on(n, &spec, seed, Verify::auto(n)).unwrap();
        prop_assert_eq!(hier.execution.cost.comp_ops(), flat.execution.cost.comp_ops());
        prop_assert_eq!(hier.execution.cost.io_words(), flat.execution.cost.io_words());
        prop_assert_eq!(hier.execution.peak_memory, flat.execution.peak_memory);
        prop_assert_eq!(hier.execution.cost.level_count(), 2);
        let t = hier.execution.cost.traffic();
        prop_assert!(t.is_monotone_non_increasing(), "kernel {}: {}", kernel.name(), t);
    }
}

#[test]
fn intensity_models_match_paper_shapes() {
    // A non-random structural check over the whole registry.
    for k in all_kernels() {
        let model = k.intensity_model();
        match k.name() {
            "matmul" | "triangularization" | "grid2d" => {
                assert!(
                    matches!(model, IntensityModel::Power { exponent, .. } if (exponent - 0.5).abs() < 1e-9),
                    "{} should be sqrt-shaped",
                    k.name()
                );
            }
            "grid3d" => {
                assert!(
                    matches!(model, IntensityModel::Power { exponent, .. } if (exponent - 1.0/3.0).abs() < 1e-9)
                );
            }
            "fft" | "sort" => {
                assert!(matches!(model, IntensityModel::Log2 { .. }));
            }
            "matvec" | "trisolve" => {
                assert!(matches!(model, IntensityModel::Constant { .. }));
            }
            other => panic!("unexpected kernel {other}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Store fault matrix (PR 10): for an arbitrary seeded store fault
    /// (torn write, bit flip, ENOSPC, stale version), an arbitrary
    /// registry kernel, and an arbitrary grid point, the faulted publish
    /// is never served as a valid profile — it is detected, quarantined
    /// (or, for ENOSPC, never published), repaired down the ladder, and
    /// the post-repair answer is bit-identical to a fresh recompute.
    #[test]
    fn every_injected_store_fault_is_detected_quarantined_and_repaired(
        seed in 0u64..256,
        kernel_idx in 0usize..11,
        logn in 3u32..6,
    ) {
        use balance_machine::{FaultPlan, Lookup, ProfileStore};
        let kernels = registry();
        let kernel = &kernels[kernel_idx];
        // Power-of-two sizes are valid for every registry kernel (fft in
        // particular has no canonical trace at other sizes).
        let n = 1usize << logn;
        let dir = std::env::temp_dir().join(format!(
            "kb-prop-storefault-{seed}-{kernel_idx}-{logn}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ProfileStore::open(&dir).unwrap();
        let service = ProfileService::new(&store);
        let model = TrafficModel::WORD;
        let (meta, fresh, _) = service.recompute(kernel.as_ref(), n, model).unwrap();
        let plan = FaultPlan::seeded_store(seed);
        let published = store.put_with(&meta, &fresh, &plan);
        let key = key_for(kernel.name(), n, model);
        match published {
            // ENOSPC: the publish failed and nothing durable changed.
            Err(_) => prop_assert!(matches!(store.get(&key).unwrap(), Lookup::Miss)),
            Ok(()) => match store.get(&key).unwrap() {
                // Torn / bit-flipped / stale-version publishes must be
                // caught and quarantined — never served.
                Lookup::Quarantined { .. } => {
                    prop_assert_eq!(store.quarantined_files().unwrap().len(), 1);
                }
                Lookup::Hit { payload, .. } => {
                    // The only acceptable hit is a bit-identical one
                    // (a fault seed can only arm one of the four kinds,
                    // all of which corrupt — so this must not happen).
                    prop_assert_eq!(&payload, &fresh);
                    prop_assert!(false, "a faulted publish validated");
                }
                Lookup::Miss => prop_assert!(false, "published entry vanished"),
            },
        }
        // Repair through the service: recompute + re-persist...
        let healed = service.fetch(kernel.as_ref(), n, model).unwrap();
        prop_assert!(healed.source != ServeSource::Hit, "repair must recompute");
        // ...bit-identical to the fresh artifact...
        prop_assert_eq!(&healed.payload, &fresh);
        // ...and the next lookup is a clean hit serving the same bits.
        let again = service.fetch(kernel.as_ref(), n, model).unwrap();
        prop_assert_eq!(again.source, ServeSource::Hit);
        prop_assert_eq!(&again.payload, &fresh);
        prop_assert!(store.fsck().unwrap().healthy());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
