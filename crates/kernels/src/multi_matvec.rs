//! Multi-vector matrix–vector multiplication — the crossover kernel.
//!
//! `Y = A·X` with `v` right-hand-side vectors interpolates between the
//! paper's two worlds:
//!
//! * `v = 1` is matrix–vector multiplication — I/O-bounded, intensity
//!   saturated at 2 (§3.6);
//! * `v = N` is matrix multiplication — intensity `Θ(√M)`, rebalanceable
//!   with `M_new = α²·M_old` (§3.1).
//!
//! For fixed `v`, every element of `A` is used exactly `v` times, so the
//! intensity grows with `M` only until it saturates at `2v`: the computation
//! is rebalanceable **up to `α = v / r_old`** and impossible beyond. This
//! executable example sharpens the paper's dichotomy into a spectrum: the
//! saturation ceiling — the average reuse of the dominant data — is what
//! decides whether memory can buy balance.

use balance_core::{CostProfile, HierarchySpec, IntensityModel};
use balance_machine::{AnalyticProfile, ExternalStore, Pe};

use crate::error::KernelError;
use crate::matrix::{load_block, store_block, MatrixHandle};
use crate::reference;
use crate::traits::{Kernel, KernelRun};
use crate::verify::Verify;
use crate::workload;

/// Blocked `Y = A·X` with `v` columns in `X`. Problem size `n` = matrix
/// dimension.
#[derive(Debug, Clone, Copy)]
pub struct MultiMatVec {
    vectors: usize,
}

impl MultiMatVec {
    /// Creates the kernel with `v ≥ 1` right-hand sides.
    ///
    /// # Panics
    ///
    /// Panics if `vectors == 0`.
    #[must_use]
    pub fn new(vectors: usize) -> Self {
        assert!(vectors >= 1, "need at least one vector");
        MultiMatVec { vectors }
    }

    /// Number of right-hand-side vectors `v`.
    #[must_use]
    pub fn vectors(&self) -> usize {
        self.vectors
    }

    /// The tile side used at memory `m` (three `b×b`-ish panels, capped so
    /// a `b × v` panel of `X`/`Y` fits).
    #[must_use]
    pub fn tile_side(&self, m: usize) -> usize {
        // Panels: A-tile b×b, X-panel b×v, Y-panel b×v: b² + 2bv ≤ m.
        let v = self.vectors as f64;
        let mf = m as f64;
        let b = (-v + (v * v + mf).sqrt()).floor() as usize;
        b.max(1)
    }
}

impl Kernel for MultiMatVec {
    fn access_trace(&self, n: usize) -> Option<crate::trace::AccessTrace> {
        (n > 0).then(|| crate::trace::multi_matvec(n, self.vectors()))
    }

    /// Per vector the trace is a matvec over `X[·][vec]`/`Y[·][vec]`, so the
    /// intra-vector `x` reuse class is matvec's (distance `2n+1`, `n(n-1)`
    /// reuses per vector). `A` additionally recurs across each of the `v-1`
    /// vector transitions: the window holds all `n²` of `A`, the old and new
    /// `x`/`y` columns, and loop-edge clippings at the first and last rows —
    /// interior rows collapse to one class at `n²+3n`, rows `0` and `n-1`
    /// contribute `2n` thin classes.
    fn analytic_profile(&self, n: usize) -> Option<AnalyticProfile> {
        if n == 0 {
            return None;
        }
        let n64 = n as u64;
        let v = self.vectors() as u64;
        let nn = n64 * n64;
        let mut p = AnalyticProfile::new();
        p.record_compulsory(nn + 2 * v * n64);
        p.record_class(2 * n64 + 1, v * n64 * (n64 - 1));
        if v >= 2 {
            let t = v - 1; // vector transitions
            for j in 0..n64 {
                // Row 0 reopens the new vector: only j+1 entries of the new
                // x column precede A[0][j]'s reuse.
                p.record_class(nn + 2 * n64 + j, t);
            }
            if n64 >= 2 {
                for j in 0..n64 {
                    // Row n-1 closes the old vector: the old x column is
                    // clipped past position j.
                    p.record_class(nn + 3 * n64 - j, t);
                }
            }
            if n64 >= 3 {
                p.record_class(nn + 3 * n64, t * (n64 - 2) * n64);
            }
        }
        Some(p)
    }

    fn name(&self) -> &'static str {
        "multi_matvec"
    }

    fn description(&self) -> &'static str {
        "Y = A·X with v vectors: interpolates matvec (v=1) → matmul (v=N); saturates at 2v"
    }

    fn intensity_model(&self) -> IntensityModel {
        // For fixed v the asymptotic classification is I/O-bounded with
        // ceiling 2v (each A element used v times).
        IntensityModel::constant(2.0 * self.vectors as f64)
    }

    fn analytic_cost(&self, n: usize, m: usize) -> CostProfile {
        let n64 = n as u64;
        let v = self.vectors as u64;
        let b = self.tile_side(m).min(n.max(1)) as u64;
        // A read once; X re-read once per row-block; Y written once.
        let io = n64 * n64 + n64.div_ceil(b) * n64 * v + n64 * v;
        CostProfile::new(2 * n64 * n64 * v, io)
    }

    fn min_memory(&self, _n: usize) -> usize {
        1 + 2 * self.vectors
    }

    fn run_on(
        &self,
        n: usize,
        machine: &HierarchySpec,
        seed: u64,
        verify: Verify,
    ) -> Result<KernelRun, KernelError> {
        // No cheap randomized check exists: verify fully under any policy.
        let _ = verify;
        let m = machine.local_capacity_words();
        if n == 0 {
            return Err(KernelError::BadParameters {
                reason: "matrix size must be positive".into(),
            });
        }
        if m < self.min_memory(n) {
            return Err(KernelError::MemoryTooSmall {
                have: m,
                need: self.min_memory(n),
            });
        }
        let v = self.vectors;
        let b = self.tile_side(m).min(n);

        let a_data = workload::random_matrix(n, seed);
        let x_data = workload::random_vector(n * v, seed ^ 0xabcd);
        let mut store = ExternalStore::new();
        let a = MatrixHandle::new(store.alloc_from(&a_data), n, n);
        let x = MatrixHandle::new(store.alloc_from(&x_data), n, v);
        let y = MatrixHandle::new(store.alloc(n * v), n, v);

        let mut pe = Pe::for_hierarchy(machine);
        let buf_a = pe.alloc(b * b)?;
        let buf_x = pe.alloc(b * v)?;
        let buf_y = pe.alloc(b * v)?;

        for i0 in (0..n).step_by(b) {
            let ib = b.min(n - i0);
            pe.buf_mut(buf_y)?[..ib * v].fill(0.0);
            for k0 in (0..n).step_by(b) {
                let kb = b.min(n - k0);
                load_block(&mut pe, &store, &a, i0, k0, ib, kb, buf_a)?;
                load_block(&mut pe, &store, &x, k0, 0, kb, v, buf_x)?;
                pe.update(buf_y, &[buf_a, buf_x], |yv, srcs| {
                    let (av, xv) = (srcs[0], srcs[1]);
                    for i in 0..ib {
                        for k in 0..kb {
                            let aik = av[i * kb + k];
                            for c in 0..v {
                                yv[i * v + c] += aik * xv[k * v + c];
                            }
                        }
                    }
                })?;
                pe.count_ops(2 * (ib * kb * v) as u64);
            }
            store_block(&mut pe, &mut store, &y, i0, 0, ib, v, buf_y)?;
        }

        // Verify column by column against the matvec reference.
        let got = y.snapshot(&store);
        for c in 0..v {
            let xc: Vec<f64> = (0..n).map(|r| x_data[r * v + c]).collect();
            let want = reference::matvec(&a_data, &xc, n);
            for r in 0..n {
                let err = (got[r * v + c] - want[r]).abs();
                let tol = 1e-10 * (n as f64);
                if err > tol {
                    return Err(KernelError::VerificationFailed {
                        what: "multi_matvec",
                        max_error: err,
                        tolerance: tol,
                    });
                }
            }
        }

        Ok(KernelRun {
            n,
            m,
            execution: pe.execution(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verifies_across_vector_counts() {
        for v in [1usize, 2, 4, 8] {
            let k = MultiMatVec::new(v);
            let run = k.run(24, 256.max(k.min_memory(24)), 5).unwrap();
            assert_eq!(run.execution.cost.comp_ops(), 2 * 24u64.pow(2) * v as u64);
        }
    }

    #[test]
    fn tile_side_respects_memory() {
        for v in [1usize, 4, 16] {
            let k = MultiMatVec::new(v);
            for m in [k.min_memory(64), 100, 1000, 10000] {
                let b = k.tile_side(m);
                assert!(b * b + 2 * b * v <= m || b == 1, "v={v}, m={m}, b={b}");
            }
        }
    }

    #[test]
    fn intensity_saturates_at_two_v() {
        // The ceiling 2v is approached as n/v grows (the X and Y traffic
        // amortizes against A's n² words).
        for (v, n) in [(2usize, 96usize), (8, 384)] {
            let k = MultiMatVec::new(v);
            let r = k.run(n, 1 << 14, 1).unwrap().intensity();
            let ceiling = 2.0 * v as f64;
            assert!(r <= ceiling + 0.01, "v={v}: r={r}");
            assert!(r > 0.85 * ceiling, "v={v}: r={r} far below ceiling");
        }
    }

    #[test]
    fn intensity_grows_before_saturating() {
        // With tight memory, the X re-reads dominate and r < 2v; memory
        // buys intensity until the ceiling.
        let v = 8;
        let k = MultiMatVec::new(v);
        let n = 48;
        let r_small = k.run(n, k.min_memory(n) + 8, 2).unwrap().intensity();
        let r_big = k.run(n, 1 << 14, 2).unwrap().intensity();
        assert!(r_big > 1.5 * r_small, "{r_small} → {r_big}");
    }

    #[test]
    fn v_equals_one_matches_matvec_profile() {
        let k = MultiMatVec::new(1);
        let run = k.run(32, 512, 3).unwrap();
        assert!(run.intensity() <= 2.01);
    }

    #[test]
    fn io_bounded_classification_for_fixed_v() {
        assert!(MultiMatVec::new(4).io_bounded());
    }

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(MultiMatVec::new(2).run(0, 64, 0).is_err());
        assert!(MultiMatVec::new(2).run(8, 3, 0).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one vector")]
    fn zero_vectors_panics() {
        let _ = MultiMatVec::new(0);
    }
}
