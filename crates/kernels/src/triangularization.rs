//! Blocked matrix triangularization via LU / Gaussian elimination
//! (paper §3.2).
//!
//! The paper: the triangularization proceeds in `N/√M` steps, each
//! annihilating `√M` consecutive columns and updating the trailing matrix;
//! per step `C_comp = Θ(N²·√M)` and `C_io = Θ(N²)`, so `r(M) = Θ(√M)` and
//! `M_new = α²·M_old`, exactly as for matrix multiplication.
//!
//! The implementation is a right-looking blocked LU factorization without
//! pivoting (inputs are generated diagonally dominant, so pivoting is
//! unnecessary and the factorization is numerically safe):
//!
//! 1. factor the `b × b` diagonal block in memory;
//! 2. compute the panel `L(i,k) = A(i,k)·U(k,k)⁻¹` block by block;
//! 3. compute the row panel `U(k,j) = L(k,k)⁻¹·A(k,j)` block by block;
//! 4. trailing update `A(i,j) -= L(i,k)·U(k,j)` — three resident tiles,
//!    `3b² ≤ M`, the dominant term in both ops and I/O.
//!
//! Gaussian elimination is one of the two standard triangularization
//! algorithms the paper names; the other (Givens rotations) is implemented
//! as a systolic array in `balance-parallel` (Gentleman–Kung).

use balance_core::{CostProfile, HierarchySpec, IntensityModel};
use balance_machine::{ExternalStore, Pe};

use crate::error::KernelError;
use crate::matmul::tile_side;
use crate::matrix::{load_block, store_block, MatrixHandle};
use crate::reference;
use crate::traits::{Kernel, KernelRun};
use crate::verify::{self, Verify};
use crate::workload;

/// Blocked out-of-core LU triangularization.
#[derive(Debug, Clone, Copy, Default)]
pub struct Triangularization;

impl Kernel for Triangularization {
    fn access_trace(&self, n: usize) -> Option<crate::trace::AccessTrace> {
        (n > 0).then(|| crate::trace::triangularization(n))
    }

    fn name(&self) -> &'static str {
        "triangularization"
    }

    fn description(&self) -> &'static str {
        "N×N LU factorization (Gaussian elimination), b-wide panels with 3b² ≤ M (paper §3.2)"
    }

    fn intensity_model(&self) -> IntensityModel {
        // Trailing updates dominate: 2·ib·kb·jb ops against 4·b² words per
        // tile-triple — ratio ≈ b/2 = √(M/3)/2.
        IntensityModel::sqrt_m(0.5 / 3.0f64.sqrt())
    }

    fn analytic_cost(&self, n: usize, m: usize) -> CostProfile {
        let b = tile_side(m).min(n.max(1)) as u64;
        let n = n as u64;
        // Flop count of LU: ~2n³/3. I/O: the trailing update reads 3 and
        // writes 1 tile (4b² words) per 2b³ ops -> io ≈ (2n³/3)·(2/b).
        let comp = 2 * n * n * n / 3;
        let io = 4 * n * n * n / (3 * b) + 2 * n * n;
        CostProfile::new(comp, io)
    }

    fn min_memory(&self, _n: usize) -> usize {
        3
    }

    fn run_on(
        &self,
        n: usize,
        machine: &HierarchySpec,
        seed: u64,
        verify: Verify,
    ) -> Result<KernelRun, KernelError> {
        let m = machine.local_capacity_words();
        if n == 0 {
            return Err(KernelError::BadParameters {
                reason: "matrix size must be positive".into(),
            });
        }
        if m < self.min_memory(n) {
            return Err(KernelError::MemoryTooSmall {
                have: m,
                need: self.min_memory(n),
            });
        }
        let b = tile_side(m).min(n);

        let mut store = ExternalStore::new();
        let a_data = workload::random_diagonally_dominant(n, seed);
        let a = MatrixHandle::new(store.alloc_from(&a_data), n, n);

        let mut pe = Pe::for_hierarchy(machine);
        let buf_d = pe.alloc(b * b)?; // diagonal block / L(i,k)
        let buf_p = pe.alloc(b * b)?; // panel block / U(k,j)
        let buf_t = pe.alloc(b * b)?; // trailing tile

        for k0 in (0..n).step_by(b) {
            let kb = b.min(n - k0);

            // 1. Factor the diagonal block in memory.
            load_block(&mut pe, &store, &a, k0, k0, kb, kb, buf_d)?;
            let ops = {
                let d = pe.buf_mut(buf_d)?;
                let mut ops = 0u64;
                for k in 0..kb {
                    let pivot = d[k * kb + k];
                    for i in k + 1..kb {
                        d[i * kb + k] /= pivot;
                        ops += 1;
                        let lik = d[i * kb + k];
                        for j in k + 1..kb {
                            d[i * kb + j] -= lik * d[k * kb + j];
                            ops += 2;
                        }
                    }
                }
                ops
            };
            pe.count_ops(ops);
            store_block(&mut pe, &mut store, &a, k0, k0, kb, kb, buf_d)?;

            // 2. Column panel: L(i,k) = A(i,k)·U(k,k)⁻¹.
            for i0 in ((k0 + b)..n).step_by(b) {
                let ib = b.min(n - i0);
                load_block(&mut pe, &store, &a, i0, k0, ib, kb, buf_p)?;
                let ops = pe.update(buf_p, &[buf_d], |p, srcs| {
                    let d = srcs[0];
                    let mut ops = 0u64;
                    for r in 0..ib {
                        for k in 0..kb {
                            let mut s = p[r * kb + k];
                            for t in 0..k {
                                s -= p[r * kb + t] * d[t * kb + k];
                                ops += 2;
                            }
                            p[r * kb + k] = s / d[k * kb + k];
                            ops += 1;
                        }
                    }
                    ops
                })?;
                pe.count_ops(ops);
                store_block(&mut pe, &mut store, &a, i0, k0, ib, kb, buf_p)?;
            }

            // 3. Row panel: U(k,j) = L(k,k)⁻¹·A(k,j) (unit lower diagonal).
            for j0 in ((k0 + b)..n).step_by(b) {
                let jb = b.min(n - j0);
                load_block(&mut pe, &store, &a, k0, j0, kb, jb, buf_p)?;
                let ops = pe.update(buf_p, &[buf_d], |q, srcs| {
                    let d = srcs[0];
                    let mut ops = 0u64;
                    for c in 0..jb {
                        for k in 0..kb {
                            let mut s = q[k * jb + c];
                            for t in 0..k {
                                s -= d[k * kb + t] * q[t * jb + c];
                                ops += 2;
                            }
                            q[k * jb + c] = s;
                        }
                    }
                    ops
                })?;
                pe.count_ops(ops);
                store_block(&mut pe, &mut store, &a, k0, j0, kb, jb, buf_p)?;
            }

            // 4. Trailing update: A(i,j) -= L(i,k)·U(k,j).
            for i0 in ((k0 + b)..n).step_by(b) {
                let ib = b.min(n - i0);
                load_block(&mut pe, &store, &a, i0, k0, ib, kb, buf_d)?;
                for j0 in ((k0 + b)..n).step_by(b) {
                    let jb = b.min(n - j0);
                    load_block(&mut pe, &store, &a, k0, j0, kb, jb, buf_p)?;
                    load_block(&mut pe, &store, &a, i0, j0, ib, jb, buf_t)?;
                    pe.update(buf_t, &[buf_d, buf_p], |t, srcs| {
                        let (l, u) = (srcs[0], srcs[1]);
                        for i in 0..ib {
                            for k in 0..kb {
                                let lik = l[i * kb + k];
                                for j in 0..jb {
                                    t[i * jb + j] -= lik * u[k * jb + j];
                                }
                            }
                        }
                    })?;
                    pe.count_ops(2 * (ib * kb * jb) as u64);
                    store_block(&mut pe, &mut store, &a, i0, j0, ib, jb, buf_t)?;
                }
            }
        }

        match verify {
            Verify::Full => {
                // The packed L\U must reconstruct the original matrix.
                let lu = a.snapshot(&store);
                let back = reference::lu_reconstruct(&lu, n);
                let err = reference::max_abs_diff(&a_data, &back);
                let tol = 1e-9 * (n as f64 + 1.0);
                if err > tol {
                    return Err(KernelError::VerificationFailed {
                        what: "triangularization",
                        max_error: err,
                        tolerance: tol,
                    });
                }
            }
            Verify::Freivalds { rounds } => {
                let lu = a.snapshot(&store);
                verify::freivalds_lu(&a_data, &lu, n, seed, rounds)?;
            }
            Verify::None => {}
        }

        Ok(KernelRun {
            n,
            m,
            execution: pe.execution(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorization_is_verified_internally() {
        let run = Triangularization.run(24, 100, 1).unwrap();
        assert!(run.execution.cost.comp_ops() > 0);
        assert!(run.execution.cost.io_words() > 0);
    }

    #[test]
    fn block_size_does_not_change_the_result() {
        // LU without pivoting is unique, so any block size must verify.
        // Exercise b = 1 (fully streamed), b = 3 (ragged), b = n (in-memory).
        let n = 16;
        for m in [3, 27, 3 * n * n] {
            let run = Triangularization.run(n, m, 9).unwrap();
            assert_eq!(run.n, n, "m = {m}");
        }
    }

    #[test]
    fn comp_ops_close_to_two_thirds_n_cubed() {
        let n = 30;
        let run = Triangularization.run(n, 300, 2).unwrap();
        let expected = 2.0 * (n as f64).powi(3) / 3.0;
        let got = run.execution.cost.comp_ops() as f64;
        // Lower-order terms allowed: within 25% at this size.
        assert!(
            (got - expected).abs() / expected < 0.25,
            "got {got}, expected {expected}"
        );
    }

    #[test]
    fn intensity_grows_like_sqrt_m() {
        let n = 48;
        let r1 = Triangularization.run(n, 48, 3).unwrap().intensity(); // b = 4
        let r2 = Triangularization.run(n, 768, 3).unwrap().intensity(); // b = 16
        let ratio = r2 / r1;
        assert!((2.5..5.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn peak_memory_within_m() {
        let run = Triangularization.run(20, 300, 4).unwrap();
        assert!(run.execution.peak_memory.get() <= 300);
    }

    #[test]
    fn edge_blocks_handled() {
        // n = 17, b = 4: ragged panels.
        let run = Triangularization.run(17, 48, 5).unwrap();
        assert!(run.execution.cost.comp_ops() > 0);
    }

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(matches!(
            Triangularization.run(0, 100, 0),
            Err(KernelError::BadParameters { .. })
        ));
        assert!(matches!(
            Triangularization.run(8, 1, 0),
            Err(KernelError::MemoryTooSmall { .. })
        ));
    }

    #[test]
    fn single_block_case() {
        // m big enough that b = n: everything in one in-memory factorization.
        let n = 12;
        let run = Triangularization.run(n, 3 * n * n, 6).unwrap();
        // I/O is then exactly read + write of the matrix.
        assert_eq!(run.execution.cost.io_words(), 2 * (n * n) as u64);
    }
}
