//! Uninstrumented reference implementations used for verification.
//!
//! Every out-of-core kernel's result is checked against one of these plain
//! in-memory algorithms. They are deliberately written in the most obvious
//! way possible — their job is to be correct, not fast or I/O-efficient.

/// Naive `O(n³)` matrix multiplication: `C = A·B`, row-major `n × n`.
#[must_use]
pub fn matmul(a: &[f64], b: &[f64], n: usize) -> Vec<f64> {
    let mut c = vec![0.0; n * n];
    for i in 0..n {
        for k in 0..n {
            let aik = a[i * n + k];
            for j in 0..n {
                c[i * n + j] += aik * b[k * n + j];
            }
        }
    }
    c
}

/// Naive matrix–vector product `y = A·x`.
#[must_use]
pub fn matvec(a: &[f64], x: &[f64], n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| (0..n).map(|j| a[i * n + j] * x[j]).sum())
        .collect()
}

/// Forward substitution for `L·x = b` (general nonzero diagonal).
#[must_use]
pub fn trisolve(l: &[f64], b: &[f64], n: usize) -> Vec<f64> {
    let mut x = vec![0.0; n];
    for i in 0..n {
        let mut s = b[i];
        for j in 0..i {
            s -= l[i * n + j] * x[j];
        }
        x[i] = s / l[i * n + i];
    }
    x
}

/// In-place unblocked LU factorization without pivoting; returns the packed
/// `L\U` matrix (unit lower diagonal implied).
#[must_use]
pub fn lu_factor(a: &[f64], n: usize) -> Vec<f64> {
    let mut lu = a.to_vec();
    for k in 0..n {
        let pivot = lu[k * n + k];
        for i in k + 1..n {
            lu[i * n + k] /= pivot;
            let lik = lu[i * n + k];
            for j in k + 1..n {
                lu[i * n + j] -= lik * lu[k * n + j];
            }
        }
    }
    lu
}

/// Multiplies the packed `L\U` factors back together: returns `L·U`.
#[must_use]
pub fn lu_reconstruct(lu: &[f64], n: usize) -> Vec<f64> {
    // a[i][j] = sum_{k <= min(i,j)} L[i][k]·U[k][j] with L[i][i] = 1,
    // L[i][k] = lu[i][k] for k < i, U[k][j] = lu[k][j] for k <= j.
    let mut a = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut s = 0.0;
            for k in 0..=i.min(j) {
                let lik = if k == i { 1.0 } else { lu[i * n + k] };
                let ukj = lu[k * n + j];
                s += lik * ukj;
            }
            a[i * n + j] = s;
        }
    }
    a
}

/// Naive `O(n²)` discrete Fourier transform of an interleaved complex signal
/// `[re, im, …]`; forward transform with kernel `e^(-2πi·jk/n)`.
#[must_use]
pub fn dft(signal: &[f64]) -> Vec<f64> {
    let n = signal.len() / 2;
    let mut out = vec![0.0; 2 * n];
    for k in 0..n {
        let (mut re, mut im) = (0.0, 0.0);
        for j in 0..n {
            let angle = -2.0 * std::f64::consts::PI * (j as f64) * (k as f64) / (n as f64);
            let (s, c) = angle.sin_cos();
            let (xr, xi) = (signal[2 * j], signal[2 * j + 1]);
            re += xr * c - xi * s;
            im += xr * s + xi * c;
        }
        out[2 * k] = re;
        out[2 * k + 1] = im;
    }
    out
}

/// In-memory iterative radix-2 FFT (forward), interleaved complex.
/// Used as the fast reference for large out-of-core FFT runs; itself
/// verified against [`dft`] in tests.
///
/// # Panics
///
/// Panics if the number of complex points is not a power of two.
#[must_use]
pub fn fft(signal: &[f64]) -> Vec<f64> {
    let n = signal.len() / 2;
    assert!(n.is_power_of_two(), "FFT size must be a power of two");
    let mut x = signal.to_vec();
    if n == 1 {
        return x;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if j > i {
            x.swap(2 * i, 2 * j);
            x.swap(2 * i + 1, 2 * j + 1);
        }
    }
    // Butterflies.
    let mut half = 1usize;
    while half < n {
        let span = half * 2;
        for base in (0..n).step_by(span) {
            for k in 0..half {
                let angle = -std::f64::consts::PI * (k as f64) / (half as f64);
                let (s, c) = angle.sin_cos();
                let (i1, i2) = (base + k, base + k + half);
                let (ar, ai) = (x[2 * i1], x[2 * i1 + 1]);
                let (br, bi) = (x[2 * i2], x[2 * i2 + 1]);
                let (tr, ti) = (br * c - bi * s, br * s + bi * c);
                x[2 * i1] = ar + tr;
                x[2 * i1 + 1] = ai + ti;
                x[2 * i2] = ar - tr;
                x[2 * i2 + 1] = ai - ti;
            }
        }
        half = span;
    }
    x
}

/// One Jacobi relaxation sweep on a d-dimensional periodic grid with a
/// `2d+1`-point star stencil: every point becomes the average of itself and
/// its `2d` axis neighbors.
///
/// `dims` gives the grid extent per dimension; `src.len()` must equal the
/// product of `dims`.
#[must_use]
pub fn jacobi_step(src: &[f64], dims: &[usize]) -> Vec<f64> {
    let d = dims.len();
    let total: usize = dims.iter().product();
    debug_assert_eq!(src.len(), total);
    // Row-major strides: last dimension contiguous.
    let mut strides = vec![1usize; d];
    for i in (0..d.saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * dims[i + 1];
    }
    let weight = 1.0 / (2.0 * d as f64 + 1.0);
    let mut dst = vec![0.0; total];
    let mut coord = vec![0usize; d];
    for (idx, out) in dst.iter_mut().enumerate() {
        let mut s = src[idx];
        for dim in 0..d {
            let c = coord[dim];
            let up = if c + 1 == dims[dim] {
                idx - c * strides[dim]
            } else {
                idx + strides[dim]
            };
            let down = if c == 0 {
                idx + (dims[dim] - 1) * strides[dim]
            } else {
                idx - strides[dim]
            };
            s += src[up] + src[down];
        }
        *out = s * weight;
        // Increment the coordinate vector (row-major order).
        for dim in (0..d).rev() {
            coord[dim] += 1;
            if coord[dim] < dims[dim] {
                break;
            }
            coord[dim] = 0;
        }
    }
    dst
}

/// Runs `steps` Jacobi sweeps and returns the final state.
#[must_use]
pub fn jacobi(src: &[f64], dims: &[usize], steps: usize) -> Vec<f64> {
    let mut state = src.to_vec();
    for _ in 0..steps {
        state = jacobi_step(&state, dims);
    }
    state
}

/// Maximum absolute difference between two slices.
///
/// # Panics
///
/// Panics if lengths differ.
#[must_use]
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;

    #[test]
    fn matmul_identity() {
        let n = 4;
        let a = workload::random_matrix(n, 1);
        let mut eye = vec![0.0; n * n];
        for i in 0..n {
            eye[i * n + i] = 1.0;
        }
        assert_eq!(matmul(&a, &eye, n), a);
        assert_eq!(matmul(&eye, &a, n), a);
    }

    #[test]
    fn matvec_agrees_with_matmul_column() {
        let n = 5;
        let a = workload::random_matrix(n, 2);
        let x = workload::random_vector(n, 3);
        // Build the n x n matrix whose first column is x.
        let mut xm = vec![0.0; n * n];
        for i in 0..n {
            xm[i * n] = x[i];
        }
        let prod = matmul(&a, &xm, n);
        let y = matvec(&a, &x, n);
        for i in 0..n {
            assert!((prod[i * n] - y[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn trisolve_inverts_lower_triangular_product() {
        let n = 12;
        let l = workload::random_lower_triangular(n, 4);
        let x_true = workload::random_vector(n, 5);
        let b = matvec(&l, &x_true, n);
        let x = trisolve(&l, &b, n);
        assert!(max_abs_diff(&x, &x_true) < 1e-9);
    }

    #[test]
    fn lu_reconstructs_diagonally_dominant_matrix() {
        let n = 16;
        let a = workload::random_diagonally_dominant(n, 6);
        let lu = lu_factor(&a, n);
        let back = lu_reconstruct(&lu, n);
        assert!(max_abs_diff(&a, &back) < 1e-9 * (n as f64 + 1.0));
    }

    #[test]
    fn fft_matches_dft() {
        for logn in 0..=7 {
            let n = 1usize << logn;
            let x = workload::random_complex_signal(n, 7);
            let got = fft(&x);
            let want = dft(&x);
            assert!(max_abs_diff(&got, &want) < 1e-8 * (n as f64), "n = {n}");
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let n = 8;
        let mut x = vec![0.0; 2 * n];
        x[0] = 1.0;
        let y = fft(&x);
        for k in 0..n {
            assert!((y[2 * k] - 1.0).abs() < 1e-12);
            assert!(y[2 * k + 1].abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        let _ = fft(&[0.0; 6]); // 3 complex points
    }

    #[test]
    fn jacobi_preserves_constant_fields() {
        // The stencil is an average, so a constant field is a fixed point.
        for dims in [vec![8], vec![4, 4], vec![3, 3, 3], vec![2, 2, 2, 2]] {
            let total: usize = dims.iter().product();
            let grid = vec![2.5; total];
            let out = jacobi(&grid, &dims, 3);
            assert!(max_abs_diff(&grid, &out) < 1e-12, "dims {dims:?}");
        }
    }

    #[test]
    fn jacobi_conserves_mean() {
        // Averaging with periodic boundaries conserves the total mass.
        let dims = [4, 6];
        let grid = workload::random_grid(24, 8);
        let before: f64 = grid.iter().sum();
        let after: f64 = jacobi(&grid, &dims, 5).iter().sum();
        assert!((before - after).abs() < 1e-9);
    }

    #[test]
    fn jacobi_1d_hand_example() {
        // [0, 3, 0] periodic, weight 1/3: every point averages itself + both
        // neighbors = (0+3+0)/3 = 1 for all positions.
        let out = jacobi_step(&[0.0, 3.0, 0.0], &[3]);
        assert!(max_abs_diff(&out, &[1.0, 1.0, 1.0]) < 1e-12);
    }

    #[test]
    fn jacobi_2d_matches_manual_stencil() {
        // 2x2 grid with periodic wrap: each point sees its row-neighbor twice?
        // No: up/down wrap to the same other row. Verify by hand:
        // grid [[a,b],[c,d]]; new a = (a + b + b + c + c)/5.
        let (a, b, c, d) = (1.0, 2.0, 3.0, 4.0);
        let out = jacobi_step(&[a, b, c, d], &[2, 2]);
        assert!((out[0] - (a + 2.0 * b + 2.0 * c) / 5.0).abs() < 1e-12);
        assert!((out[3] - (d + 2.0 * c + 2.0 * b) / 5.0).abs() < 1e-12);
    }

    #[test]
    fn max_abs_diff_basics() {
        assert_eq!(max_abs_diff(&[1.0, 2.0], &[1.0, 2.5]), 0.5);
        assert_eq!(max_abs_diff(&[], &[]), 0.0);
    }
}
