//! The [`Kernel`] abstraction: one instrumented computation.
//!
//! A kernel bundles, for one of the paper's computations:
//!
//! * the **analytic cost model** (`C_comp`, `C_io` as closed forms in `N`
//!   and `M`),
//! * the **intensity model** `r(M)` (the paper's Θ-shape),
//! * the **operational algorithm**: the out-of-core implementation that runs
//!   on the simulated PE, verifies its own output against a reference, and
//!   reports the *measured* cost profile.
//!
//! The experiments compare the three: measured ≈ analytic, and fitted
//! measured shape ≈ the paper's law.

use balance_core::{CostProfile, Execution, HierarchySpec, IntensityModel};
use balance_machine::AnalyticProfile;

use crate::error::KernelError;
use crate::trace::AccessTrace;
use crate::verify::Verify;

/// The result of one instrumented, verified kernel run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelRun {
    /// Problem size `N` (kernel-specific meaning; documented per kernel).
    pub n: usize,
    /// Local memory `M` available, in words.
    pub m: usize,
    /// Measured costs and peak memory.
    pub execution: Execution,
}

impl KernelRun {
    /// The measured intensity `C_comp / C_io`.
    #[must_use]
    pub fn intensity(&self) -> f64 {
        self.execution.intensity()
    }
}

/// One of the paper's computations, instrumented.
///
/// Every kernel executes against a memory *system*, described by a
/// [`HierarchySpec`]: level 0 is the explicitly managed local memory the
/// decomposition scheme blocks for (the paper's `M`); deeper levels, when
/// present, are cache-modeled and account traffic per boundary (see
/// `balance_machine::Pe::for_hierarchy`). The historical one-level entry
/// points [`Kernel::run`] and [`Kernel::run_with`] are provided wrappers
/// over [`Kernel::run_on`] with a flat spec — bit-identical to the
/// pre-hierarchy behavior (pinned by property test).
///
/// Implementations guarantee:
///
/// * `run_on` executes the computation *within* level 0's capacity of
///   simulated local memory (allocation failures surface as errors rather
///   than silently overflowing `M`);
/// * `run_on` verifies its numeric output against an uninstrumented
///   reference and fails with [`KernelError::VerificationFailed`] on
///   mismatch (kernels with a cheap randomized check honor the [`Verify`]
///   policy; the rest verify fully regardless);
/// * the returned counts include every word moved and every operation
///   performed, at every boundary of the hierarchy.
///
/// Implementations must be [`Sync`]: kernels take `&self` and own their
/// `Pe`/`ExternalStore` per run, so the parallel sweep executor
/// ([`crate::sweep::intensity_sweep_par`]) shares one kernel across worker
/// threads.
pub trait Kernel: Sync {
    /// Short identifier (e.g. `"matmul"`).
    fn name(&self) -> &'static str;

    /// One-line description of the computation and its paper section.
    fn description(&self) -> &'static str;

    /// The paper's intensity model `r(M)` for this computation, with a
    /// representative leading constant.
    fn intensity_model(&self) -> IntensityModel;

    /// Closed-form cost estimate for problem size `n` under memory `m`.
    fn analytic_cost(&self, n: usize, m: usize) -> CostProfile;

    /// The smallest memory (words) for which `run(n, m, …)` is supported.
    fn min_memory(&self, n: usize) -> usize;

    /// Runs the instrumented computation against `machine` under the given
    /// [`Verify`] policy — the single required execution method.
    ///
    /// The decomposition scheme blocks for `machine.local_capacity()`;
    /// deeper levels observe the transfer addresses and account inclusive
    /// per-boundary traffic in the returned execution record.
    ///
    /// # Errors
    ///
    /// * [`KernelError::MemoryTooSmall`] / [`KernelError::BadParameters`]
    ///   for unsupported parameters;
    /// * [`KernelError::Machine`] if the algorithm exceeds level 0 (a
    ///   blocking bug — treated as a test failure);
    /// * [`KernelError::VerificationFailed`] if the output is wrong.
    fn run_on(
        &self,
        n: usize,
        machine: &HierarchySpec,
        seed: u64,
        verify: Verify,
    ) -> Result<KernelRun, KernelError>;

    /// Runs fully verified on the classic one-level machine of `m` words.
    ///
    /// # Errors
    ///
    /// As [`Kernel::run_on`].
    fn run(&self, n: usize, m: usize, seed: u64) -> Result<KernelRun, KernelError> {
        self.run_on(n, &HierarchySpec::flat_words(m), seed, Verify::Full)
    }

    /// Runs on the classic one-level machine under an explicit [`Verify`]
    /// policy. Kernels with a cheap randomized check (matmul,
    /// triangularization, trisolve) honor it; the rest perform their full
    /// verification regardless, so that large-`n` sweeps of the cheap
    /// kernels are not dominated by `O(n³)` reference recomputes.
    ///
    /// # Errors
    ///
    /// As [`Kernel::run_on`].
    fn run_with(
        &self,
        n: usize,
        m: usize,
        seed: u64,
        verify: Verify,
    ) -> Result<KernelRun, KernelError> {
        self.run_on(n, &HierarchySpec::flat_words(m), seed, verify)
    }

    /// True for computations whose intensity saturates (paper §3.6).
    fn io_bounded(&self) -> bool {
        self.intensity_model().is_io_bounded()
    }

    /// The kernel's **canonical access trace** at problem size `n`: the
    /// natural (unblocked) algorithm's word-address sequence, streamed.
    ///
    /// This is what the one-pass capacity sweeps
    /// ([`crate::sweep::capacity_sweep`]) replay: the cache-model
    /// intensity curve — the trace through an automatically managed LRU of
    /// capacity `M` — read off for every `M` from a single replay. It is
    /// the measurement the E13 ablation contrasts with the explicit
    /// decomposition schemes; the two curves agree only when LRU happens
    /// to match the paper's blocking (usually it does not — that contrast
    /// is the ablation's finding).
    ///
    /// `None` when the kernel has no canonical trace at this `n` (e.g. a
    /// non-power-of-two FFT). Every registry kernel returns `Some` for its
    /// supported sizes (pinned by test).
    fn access_trace(&self, n: usize) -> Option<AccessTrace> {
        let _ = n;
        None
    }

    /// The **closed-form reuse-distance histogram** of this kernel's
    /// canonical trace at problem size `n`, when one is derived — the
    /// zero-replay engine tier ([`crate::sweep::Engine::Analytic`]).
    ///
    /// The contract is exactness: the returned histogram, finalized via
    /// [`AnalyticProfile::into_profile`], must equal the
    /// [`balance_machine::StackDistance`] replay of
    /// [`Kernel::access_trace`] at the same `n` **bit for bit, at every
    /// capacity** — pinned across the registry by property test. Kernels
    /// whose access structure resists a derivation (the FFT butterfly,
    /// data-dependent computations) return `None` and fall through to the
    /// measured engines.
    ///
    /// Must return `None` wherever [`Kernel::access_trace`] does — a
    /// histogram without a trace would be unfalsifiable.
    fn analytic_profile(&self, n: usize) -> Option<AnalyticProfile> {
        let _ = n;
        None
    }
}

/// All kernels from the paper, in Section-3 order.
#[must_use]
pub fn all_kernels() -> Vec<Box<dyn Kernel>> {
    vec![
        Box::new(crate::matmul::MatMul),
        Box::new(crate::triangularization::Triangularization),
        Box::new(crate::grid::GridRelaxation::new(2)),
        Box::new(crate::grid::GridRelaxation::new(3)),
        Box::new(crate::fft::Fft),
        Box::new(crate::sorting::ExternalSort),
        Box::new(crate::matvec::MatVec),
        Box::new(crate::trisolve::TriSolve),
    ]
}

/// The extension kernels (computations beyond the paper's table,
/// characterized with the same methodology — the "further work" its
/// conclusion invites).
#[must_use]
pub fn extension_kernels() -> Vec<Box<dyn Kernel>> {
    vec![
        Box::new(crate::convolution::Convolution::new(16)),
        Box::new(crate::transpose::Transpose),
        Box::new(crate::multi_matvec::MultiMatVec::new(8)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_the_summary_table() {
        let kernels = all_kernels();
        let names: Vec<&str> = kernels.iter().map(|k| k.name()).collect();
        for expected in [
            "matmul",
            "triangularization",
            "grid2d",
            "grid3d",
            "fft",
            "sort",
            "matvec",
            "trisolve",
        ] {
            assert!(names.contains(&expected), "missing kernel {expected}");
        }
    }

    #[test]
    fn io_bounded_flags_match_the_paper() {
        for k in all_kernels() {
            let expected = matches!(k.name(), "matvec" | "trisolve");
            assert_eq!(k.io_bounded(), expected, "kernel {}", k.name());
        }
    }
}
