//! Two-phase external sorting (paper §3.5).
//!
//! Phase 1 sorts `N/M` memory-sized subsets into sorted runs (in-place
//! heapsort, `Θ(M·log₂M)` comparisons per `Θ(M)` words of I/O). Phase 2
//! merges the runs with a k-way heap merge (`Θ(log₂k)` comparisons per word).
//! Both phases therefore run at
//!
//! ```text
//! r(M) = Θ(log₂ M)      ⇒      M_new = M_old^α
//! ```
//!
//! which Song (1981) showed is the best any comparison sort can do.
//!
//! Cost accounting follows the paper: **operations = key comparisons** (the
//! unit of the information-theoretic lower bound), I/O in words, one key =
//! one word. The merge heap and its cursor bookkeeping are allocated inside
//! the simulated local memory, so the capacity `M` is honestly charged.

use balance_core::{CostProfile, HierarchySpec, IntensityModel};
use balance_machine::{AnalyticProfile, BufferId, ExternalStore, Pe, Phase, PhaseRecorder, Region};

use crate::error::KernelError;
use crate::traits::{Kernel, KernelRun};
use crate::verify::Verify;
use crate::workload;

/// Two-phase external merge sort. Problem size `n` = number of keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExternalSort;

/// In-place heapsort counting comparisons. Returns the comparison count.
fn heapsort_count(x: &mut [f64]) -> u64 {
    let n = x.len();
    let mut cmps = 0u64;
    let sift = |x: &mut [f64], mut root: usize, end: usize, cmps: &mut u64| loop {
        let mut child = 2 * root + 1;
        if child >= end {
            break;
        }
        if child + 1 < end {
            *cmps += 1;
            if x[child + 1] > x[child] {
                child += 1;
            }
        }
        *cmps += 1;
        if x[child] > x[root] {
            x.swap(child, root);
            root = child;
        } else {
            break;
        }
    };
    if n < 2 {
        return 0;
    }
    for root in (0..n / 2).rev() {
        sift(x, root, n, &mut cmps);
    }
    for end in (1..n).rev() {
        x.swap(0, end);
        sift(x, 0, end, &mut cmps);
    }
    cmps
}

/// One merge level: merges `runs` (regions of sorted keys in `src` order)
/// in groups of at most `k`, writing concatenated longer runs to `dst_region`.
/// Returns the new run list (relative to `dst_region`'s coordinates).
#[allow(clippy::too_many_arguments)]
fn merge_level(
    pe: &mut Pe,
    store: &mut ExternalStore,
    runs: &[Region],
    k: usize,
    dst_region: Region,
    heap: BufferId,
    _bookkeeping: BufferId,
) -> Result<Vec<Region>, KernelError> {
    let mut out_runs = Vec::new();
    let mut out_pos = 0usize;
    for group in runs.chunks(k) {
        let group_len: usize = group.iter().map(Region::len).sum();
        let out_start = out_pos;

        // Initialize the heap: first element of each run.
        // Heap entries are interleaved (value, run-index) pairs in `heap`.
        let mut cursors: Vec<usize> = vec![0; group.len()];
        let mut heap_size = 0usize;
        for (ri, run) in group.iter().enumerate() {
            if run.is_empty() {
                continue;
            }
            pe.load(store, run.at(0, 1)?, heap, 2 * heap_size)?;
            cursors[ri] = 1;
            let h = pe.buf_mut(heap)?;
            h[2 * heap_size + 1] = ri as f64;
            heap_size += 1;
        }
        // Sift up each inserted element to establish the heap property.
        let cmps = {
            let h = pe.buf_mut(heap)?;
            let mut cmps = 0u64;
            for i in 1..heap_size {
                let mut c = i;
                while c > 0 {
                    let parent = (c - 1) / 2;
                    cmps += 1;
                    if h[2 * c] < h[2 * parent] {
                        h.swap(2 * c, 2 * parent);
                        h.swap(2 * c + 1, 2 * parent + 1);
                        c = parent;
                    } else {
                        break;
                    }
                }
            }
            cmps
        };
        pe.count_ops(cmps);

        // Pop-min / refill loop.
        for _ in 0..group_len {
            // Write the root key out.
            pe.store(store, heap, 0, dst_region.at(out_pos, 1)?)?;
            out_pos += 1;
            let root_run = {
                let h = pe.buf(heap)?;
                h[1] as usize
            };
            let run = group[root_run];
            if cursors[root_run] < run.len() {
                // Refill the root from the same run.
                pe.load(store, run.at(cursors[root_run], 1)?, heap, 0)?;
                cursors[root_run] += 1;
                let h = pe.buf_mut(heap)?;
                h[1] = root_run as f64;
            } else {
                // Run exhausted: move the last leaf to the root.
                let h = pe.buf_mut(heap)?;
                h[0] = h[2 * (heap_size - 1)];
                h[1] = h[2 * (heap_size - 1) + 1];
                heap_size -= 1;
                if heap_size == 0 {
                    continue;
                }
            }
            // Sift the root down.
            let cmps = {
                let h = pe.buf_mut(heap)?;
                let mut cmps = 0u64;
                let mut root = 0usize;
                loop {
                    let mut child = 2 * root + 1;
                    if child >= heap_size {
                        break;
                    }
                    if child + 1 < heap_size {
                        cmps += 1;
                        if h[2 * (child + 1)] < h[2 * child] {
                            child += 1;
                        }
                    }
                    cmps += 1;
                    if h[2 * child] < h[2 * root] {
                        h.swap(2 * child, 2 * root);
                        h.swap(2 * child + 1, 2 * root + 1);
                        root = child;
                    } else {
                        break;
                    }
                }
                cmps
            };
            pe.count_ops(cmps);
        }
        out_runs.push(dst_region.at(out_start, group_len)?);
    }
    Ok(out_runs)
}

impl Kernel for ExternalSort {
    fn access_trace(&self, n: usize) -> Option<crate::trace::AccessTrace> {
        (n > 1).then(|| crate::trace::sort(n))
    }

    /// The canonical trace ping-pongs `[src+i, dst+i]` pairs across
    /// `P = ⌈log₂ n⌉` passes. Pass 1 touches both buffers for the first
    /// time; in every later pass, each read recurs at distance `2n-1` (the
    /// tail of the previous pass plus the head of this one) and each write
    /// at `2n` (one more: its own pair partner).
    fn analytic_profile(&self, n: usize) -> Option<AnalyticProfile> {
        if n <= 1 {
            return None;
        }
        let n64 = n as u64;
        let passes = u64::from(n.next_power_of_two().trailing_zeros());
        let mut p = AnalyticProfile::new();
        p.record_compulsory(2 * n64);
        p.record_class(2 * n64 - 1, (passes - 1) * n64);
        p.record_class(2 * n64, (passes - 1) * n64);
        Some(p)
    }

    fn name(&self) -> &'static str {
        "sort"
    }

    fn description(&self) -> &'static str {
        "two-phase external merge sort: M-key runs + k-way heap merges (paper §3.5)"
    }

    fn intensity_model(&self) -> IntensityModel {
        // Phase 1: ~2·log₂M comparisons per key for 2 words of I/O;
        // merge levels add ~log₂k per word: overall ≈ 0.9·log₂M across the
        // measured regime.
        IntensityModel::log2_m(0.9)
    }

    fn analytic_cost(&self, n: usize, m: usize) -> CostProfile {
        let n64 = n as u64;
        let m64 = m.max(2) as u64;
        let k = (m64 / 3).max(2);
        let runs = n64.div_ceil(m64).max(1);
        let levels = if runs <= 1 {
            0
        } else {
            (runs as f64).log(k as f64).ceil() as u64
        };
        let log2m = (m64 as f64).log2();
        let log2k = (k as f64).log2();
        // Heapsort ≈ 2n·log₂n comparisons; each merge level ≈ n·log₂k.
        let comp = (2.0 * n64 as f64 * log2m + levels as f64 * n64 as f64 * log2k) as u64;
        let io = 2 * n64 + levels * 2 * n64;
        CostProfile::new(comp, io)
    }

    fn min_memory(&self, _n: usize) -> usize {
        8
    }

    fn run_on(
        &self,
        n: usize,
        machine: &HierarchySpec,
        seed: u64,
        verify: Verify,
    ) -> Result<KernelRun, KernelError> {
        // No cheap randomized check exists: verify fully under any policy.
        let _ = verify;
        self.run_on_with_phases(n, machine, seed).map(|(run, _)| run)
    }
}

impl ExternalSort {
    /// Like [`Kernel::run`], additionally reporting the per-phase cost
    /// breakdown the paper analyzes separately: `"run-formation"` (phase 1)
    /// and `"merge"` (phase 2).
    ///
    /// # Errors
    ///
    /// As [`Kernel::run`].
    pub fn run_with_phases(
        &self,
        n: usize,
        m: usize,
        seed: u64,
    ) -> Result<(KernelRun, Vec<Phase>), KernelError> {
        self.run_on_with_phases(n, &HierarchySpec::flat_words(m), seed)
    }

    /// [`ExternalSort::run_with_phases`] against an explicit hierarchy.
    ///
    /// # Errors
    ///
    /// As [`Kernel::run_on`].
    pub fn run_on_with_phases(
        &self,
        n: usize,
        machine: &HierarchySpec,
        seed: u64,
    ) -> Result<(KernelRun, Vec<Phase>), KernelError> {
        let m = machine.local_capacity_words();
        if n == 0 {
            return Err(KernelError::BadParameters {
                reason: "key count must be positive".into(),
            });
        }
        if m < self.min_memory(n) {
            return Err(KernelError::MemoryTooSmall {
                have: m,
                need: self.min_memory(n),
            });
        }

        let keys = workload::random_keys(n, seed);
        let mut store = ExternalStore::new();
        let input = store.alloc_from(&keys);
        let area_a = store.alloc(n);
        let area_b = store.alloc(n);

        let mut pe = Pe::for_hierarchy(machine);
        let mut recorder = PhaseRecorder::new(&pe);

        // --- Phase 1: run formation (in-place heapsort of M-key chunks) ---
        let run_len = m;
        let sort_buf = pe.alloc(run_len.min(n))?;
        let mut runs: Vec<Region> = Vec::new();
        for start in (0..n).step_by(run_len) {
            let len = run_len.min(n - start);
            pe.load(&store, input.at(start, len)?, sort_buf, 0)?;
            let cmps = {
                let buf = pe.buf_mut(sort_buf)?;
                heapsort_count(&mut buf[..len])
            };
            pe.count_ops(cmps);
            pe.store(&mut store, sort_buf, 0, area_a.at(start, len)?)?;
            runs.push(area_a.at(start, len)?);
        }
        pe.free(sort_buf)?;
        recorder.record("run-formation", &pe);

        // --- Phase 2: k-way heap merges, ping-ponging between areas ---
        let k = (m / 3).max(2);
        let heap = pe.alloc(2 * k)?; // (value, run-id) pairs
        let bookkeeping = pe.alloc(k)?; // charges cursor storage to M
        let mut src_is_a = true;
        while runs.len() > 1 {
            let dst = if src_is_a { area_b } else { area_a };
            runs = merge_level(&mut pe, &mut store, &runs, k, dst, heap, bookkeeping)?;
            src_is_a = !src_is_a;
        }
        recorder.record("merge", &pe);

        // Verify: sorted ascending and a permutation of the input.
        let result_region = runs[0];
        let got = store.slice(result_region);
        if got.windows(2).any(|w| w[0] > w[1]) {
            return Err(KernelError::VerificationFailed {
                what: "sort (ordering)",
                max_error: f64::NAN,
                tolerance: 0.0,
            });
        }
        let mut want = keys;
        want.sort_by(f64::total_cmp);
        if got != want.as_slice() {
            return Err(KernelError::VerificationFailed {
                what: "sort (permutation)",
                max_error: f64::NAN,
                tolerance: 0.0,
            });
        }

        Ok((
            KernelRun {
                n,
                m,
                execution: pe.execution(),
            },
            recorder.phases().to_vec(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heapsort_sorts_and_counts() {
        let mut x = vec![5.0, 3.0, 8.0, 1.0, 9.0, 2.0];
        let cmps = heapsort_count(&mut x);
        assert_eq!(x, vec![1.0, 2.0, 3.0, 5.0, 8.0, 9.0]);
        assert!(cmps > 0);
        // n log n ballpark: 6·log2(6) ≈ 15.5; heapsort ≈ 2x.
        assert!(cmps <= 40);

        let mut empty: Vec<f64> = vec![];
        assert_eq!(heapsort_count(&mut empty), 0);
        let mut one = vec![1.0];
        assert_eq!(heapsort_count(&mut one), 0);
    }

    #[test]
    fn heapsort_on_sorted_and_reversed() {
        let mut asc: Vec<f64> = (0..32).map(f64::from).collect();
        let want = asc.clone();
        heapsort_count(&mut asc);
        assert_eq!(asc, want);
        let mut desc: Vec<f64> = (0..32).rev().map(f64::from).collect();
        heapsort_count(&mut desc);
        assert_eq!(desc, want);
    }

    #[test]
    fn sorts_correctly_across_memories() {
        for (n, m) in [(100, 8), (1000, 16), (1000, 64), (4096, 256)] {
            let run = ExternalSort.run(n, m, 13).unwrap();
            assert!(run.execution.cost.comp_ops() > 0, "n={n}, m={m}");
        }
    }

    #[test]
    fn single_run_case_needs_no_merge() {
        // n <= m: phase 1 sorts everything; phase 2 is a no-op.
        let run = ExternalSort.run(50, 64, 1).unwrap();
        // I/O: 50 in + 50 out.
        assert_eq!(run.execution.cost.io_words(), 100);
    }

    #[test]
    fn io_counts_match_level_structure() {
        // n = 1000, m = 16 -> 63 runs; k = 5 -> levels: 63 -> 13 -> 3 -> 1 (3 levels).
        let (n, m) = (1000usize, 16usize);
        let run = ExternalSort.run(n, m, 2).unwrap();
        let io = run.execution.cost.io_words();
        // Phase 1: 2n. Each level: 2n. Expect 2n·(1+3) = 8000.
        assert_eq!(io, (2 * n * 4) as u64);
    }

    #[test]
    fn intensity_grows_with_log_m() {
        let n = 1 << 13;
        let r1 = ExternalSort.run(n, 16, 3).unwrap().intensity();
        let r2 = ExternalSort.run(n, 256, 3).unwrap().intensity();
        let r3 = ExternalSort.run(n, 4096, 3).unwrap().intensity();
        assert!(r1 < r2 && r2 < r3, "{r1} {r2} {r3}");
        // Log growth: each 16x memory step should add roughly the same
        // increment, not multiply.
        let (d1, d2) = (r2 - r1, r3 - r2);
        assert!(d2 < 3.0 * d1 + 3.0, "increments {d1} vs {d2}");
    }

    #[test]
    fn peak_memory_within_m() {
        let run = ExternalSort.run(2000, 128, 4).unwrap();
        assert!(run.execution.peak_memory.get() <= 128);
    }

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(matches!(
            ExternalSort.run(0, 64, 0),
            Err(KernelError::BadParameters { .. })
        ));
        assert!(matches!(
            ExternalSort.run(100, 4, 0),
            Err(KernelError::MemoryTooSmall { .. })
        ));
    }

    #[test]
    fn phase_breakdown_matches_the_papers_analysis() {
        // In the N = M² regime: phase 1 moves exactly 2N words with
        // ~2·log₂M comparisons per key; phase 2 (two k-way levels) moves 4N.
        let m = 64usize;
        let n = m * m;
        let (run, phases) = ExternalSort.run_with_phases(n, m, 9).unwrap();
        assert_eq!(phases.len(), 2);
        let p1 = &phases[0];
        let p2 = &phases[1];
        assert_eq!(p1.label, "run-formation");
        assert_eq!(p1.cost.io_words(), 2 * n as u64);
        assert_eq!(p2.label, "merge");
        assert_eq!(p2.cost.io_words(), 4 * n as u64);
        // The two phases account for the whole run.
        assert_eq!(p1.cost.combined(&p2.cost), run.execution.cost,);
        // Both phases run at Θ(log₂M) comparisons per word.
        assert!(p1.cost.intensity() > 1.0);
        assert!(p2.cost.intensity() > 1.0);
    }

    #[test]
    fn duplicate_keys_are_handled() {
        // Keys from a tiny universe force many duplicates through the heap.
        let n = 500;
        // Custom run with duplicates via tiny key range: reuse seed path but
        // rely on verification inside run(); duplicates occur for large n
        // with bounded generator anyway. Force the issue with small n & mod:
        let run = ExternalSort.run(n, 16, 5).unwrap();
        assert_eq!(run.n, n);
    }
}
