//! Row-major matrix views over the external store, with counted block I/O.
//!
//! All matrix kernels move data in `rows × cols` blocks. A [`MatrixHandle`]
//! names an `R × C` matrix living in a store [`Region`]; [`load_block`] and
//! [`store_block`] transfer sub-blocks through the PE row by row (each row of
//! a block is contiguous in the store), counting every word.

use balance_machine::{BufferId, ExternalStore, MachineError, Pe, Region};

/// A row-major `rows × cols` matrix stored in an external-store region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatrixHandle {
    region: Region,
    rows: usize,
    cols: usize,
}

impl MatrixHandle {
    /// Wraps a region as a matrix view.
    ///
    /// # Panics
    ///
    /// Panics if the region size does not equal `rows * cols` (harness bug,
    /// not kernel input).
    #[must_use]
    pub fn new(region: Region, rows: usize, cols: usize) -> Self {
        assert_eq!(
            region.len(),
            rows * cols,
            "region size must match matrix shape"
        );
        MatrixHandle { region, rows, cols }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The backing region.
    #[must_use]
    pub fn region(&self) -> Region {
        self.region
    }

    /// The store region of `len` elements of row `r` starting at column `c0`.
    ///
    /// # Errors
    ///
    /// Propagates range errors as [`MachineError::StoreOutOfBounds`].
    pub fn row_segment(&self, r: usize, c0: usize, len: usize) -> Result<Region, MachineError> {
        if r >= self.rows || c0 + len > self.cols {
            return Err(MachineError::StoreOutOfBounds {
                offset: r * self.cols + c0,
                len,
                size: self.region.len(),
            });
        }
        self.region.at(r * self.cols + c0, len)
    }

    /// Uncounted full read of the matrix (harness-side verification).
    #[must_use]
    pub fn snapshot(&self, store: &ExternalStore) -> Vec<f64> {
        store.slice(self.region).to_vec()
    }

    /// Uncounted full write of the matrix (harness-side input setup).
    ///
    /// # Panics
    ///
    /// Panics if `data` length differs from the matrix size.
    pub fn fill(&self, store: &mut ExternalStore, data: &[f64]) {
        store.slice_mut(self.region).copy_from_slice(data);
    }
}

/// Loads the `rows × cols` block at `(r0, c0)` of `mat` into `buf`
/// (row-major, packed), counting `rows·cols` words of I/O.
///
/// # Errors
///
/// Bounds errors from the store or the buffer.
#[allow(clippy::too_many_arguments)] // (r0, c0, rows, cols) is a block address
pub fn load_block(
    pe: &mut Pe,
    store: &ExternalStore,
    mat: &MatrixHandle,
    r0: usize,
    c0: usize,
    rows: usize,
    cols: usize,
    buf: BufferId,
) -> Result<(), MachineError> {
    for r in 0..rows {
        let region = mat.row_segment(r0 + r, c0, cols)?;
        pe.load(store, region, buf, r * cols)?;
    }
    Ok(())
}

/// Stores a packed `rows × cols` block from `buf` to `(r0, c0)` of `mat`,
/// counting `rows·cols` words of I/O.
///
/// # Errors
///
/// Bounds errors from the store or the buffer.
#[allow(clippy::too_many_arguments)] // (r0, c0, rows, cols) is a block address
pub fn store_block(
    pe: &mut Pe,
    store: &mut ExternalStore,
    mat: &MatrixHandle,
    r0: usize,
    c0: usize,
    rows: usize,
    cols: usize,
    buf: BufferId,
) -> Result<(), MachineError> {
    for r in 0..rows {
        let region = mat.row_segment(r0 + r, c0, cols)?;
        pe.store(store, buf, r * cols, region)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use balance_core::Words;

    fn setup() -> (ExternalStore, MatrixHandle) {
        let mut store = ExternalStore::new();
        let data: Vec<f64> = (0..12).map(f64::from).collect();
        let region = store.alloc_from(&data);
        let mat = MatrixHandle::new(region, 3, 4);
        (store, mat)
    }

    #[test]
    fn row_segments_index_row_major() {
        let (store, mat) = setup();
        let seg = mat.row_segment(1, 1, 2).unwrap();
        assert_eq!(store.slice(seg), &[5.0, 6.0]);
        assert!(mat.row_segment(3, 0, 1).is_err());
        assert!(mat.row_segment(0, 3, 2).is_err());
    }

    #[test]
    #[should_panic(expected = "region size")]
    fn shape_mismatch_panics() {
        let mut store = ExternalStore::new();
        let region = store.alloc(10);
        let _ = MatrixHandle::new(region, 3, 4);
    }

    #[test]
    fn block_roundtrip_counts_io() {
        let (mut store, mat) = setup();
        let mut pe = Pe::new(Words::new(16));
        let buf = pe.alloc(4).unwrap();
        // Load the 2x2 block at (1,1): [[5,6],[9,10]].
        load_block(&mut pe, &store, &mat, 1, 1, 2, 2, buf).unwrap();
        assert_eq!(pe.buf(buf).unwrap(), &[5.0, 6.0, 9.0, 10.0]);
        assert_eq!(pe.io_reads(), 4);
        // Scale and write back.
        for v in pe.buf_mut(buf).unwrap() {
            *v *= 2.0;
        }
        store_block(&mut pe, &mut store, &mat, 1, 1, 2, 2, buf).unwrap();
        assert_eq!(pe.io_writes(), 4);
        assert_eq!(
            mat.snapshot(&store),
            vec![0.0, 1.0, 2.0, 3.0, 4.0, 10.0, 12.0, 7.0, 8.0, 18.0, 20.0, 11.0]
        );
    }

    #[test]
    fn fill_and_snapshot_roundtrip() {
        let (mut store, mat) = setup();
        let new_data: Vec<f64> = (0..12).map(|i| f64::from(i) * 0.5).collect();
        mat.fill(&mut store, &new_data);
        assert_eq!(mat.snapshot(&store), new_data);
    }

    #[test]
    fn out_of_bounds_block_fails() {
        let (store, mat) = setup();
        let mut pe = Pe::new(Words::new(64));
        let buf = pe.alloc(64).unwrap();
        assert!(load_block(&mut pe, &store, &mat, 2, 2, 2, 2, buf).is_err());
    }
}
