//! Blocked out-of-core FFT (paper §3.4, Fig. 2).
//!
//! The paper decomposes an `N`-point FFT into sub-computation blocks small
//! enough to run entirely inside the local memory, with results shuffled
//! between passes (Fig. 2 shows `N = 16`, `M = 4`). Each block of `M` points
//! performs `Θ(M·log₂M)` operations for `Θ(M)` words of I/O:
//!
//! ```text
//! r(M) = Θ(log₂ M)      ⇒      M_new = M_old^α
//! ```
//!
//! Hong & Kung (1981) proved this optimal in order of magnitude.
//!
//! The implementation is a radix-2 decimation-in-time FFT whose `log₂N`
//! stages are grouped into passes of `μ = log₂B` stages (`B` complex points
//! per block, `2B ≤ M` words). Within a pass, each block gathers `B`
//! elements at stride `2^s0`, runs `μ` butterfly stages in memory with the
//! correct global twiddles, and scatters the block back — exactly the
//! paper's picture. [`decomposition`] reproduces Fig. 2 itself.
//!
//! Word accounting: one complex point = two words (re, im).

use core::fmt;

use balance_core::{CostProfile, HierarchySpec, IntensityModel};
use balance_machine::{ExternalStore, Pe};

use crate::error::KernelError;
use crate::reference;
use crate::traits::{Kernel, KernelRun};
use crate::verify::Verify;
use crate::workload;

/// Blocked out-of-core FFT. Problem size `n` = number of complex points
/// (must be a power of two).
#[derive(Debug, Clone, Copy, Default)]
pub struct Fft;

/// The largest block size (complex points) fitting in `m` words: the
/// greatest power of two `B` with `2B ≤ m`, at least 2.
#[must_use]
pub fn block_points(m: usize) -> usize {
    let max = (m / 2).max(2);
    let mut b = 2usize;
    while b * 2 <= max {
        b *= 2;
    }
    b
}

impl Kernel for Fft {
    fn access_trace(&self, n: usize) -> Option<crate::trace::AccessTrace> {
        crate::trace::fft(n)
    }

    fn name(&self) -> &'static str {
        "fft"
    }

    fn description(&self) -> &'static str {
        "N-point radix-2 FFT in log_B(N) passes of in-memory B-point blocks (paper §3.4)"
    }

    fn intensity_model(&self) -> IntensityModel {
        // Per block: 12 ops per butterfly × (B/2)·log₂B butterflies vs
        // 4B words (gather + scatter): r ≈ (12/8)·log₂B ≈ 1.5·(log₂M − 1).
        IntensityModel::log2_m(1.5)
    }

    fn analytic_cost(&self, n: usize, m: usize) -> CostProfile {
        let b = block_points(m).min(n.max(2));
        let mu = b.trailing_zeros() as u64;
        let t = (n.max(2)).trailing_zeros() as u64;
        let n64 = n as u64;
        let passes = t.div_ceil(mu);
        // Butterflies total: (N/2)·t, 12 ops each; bit-reversal is pure I/O.
        let comp = 12 * (n64 / 2) * t;
        // I/O: bit-reversal copy (4N words) + per pass gather+scatter (4N).
        let io = 4 * n64 + passes * 4 * n64;
        CostProfile::new(comp, io)
    }

    fn min_memory(&self, _n: usize) -> usize {
        4 // one block of 2 complex points
    }

    fn run_on(
        &self,
        n: usize,
        machine: &HierarchySpec,
        seed: u64,
        verify: Verify,
    ) -> Result<KernelRun, KernelError> {
        // No cheap randomized check exists: verify fully under any policy.
        let _ = verify;
        let m = machine.local_capacity_words();
        if !n.is_power_of_two() || n < 2 {
            return Err(KernelError::BadParameters {
                reason: format!("FFT size must be a power of two >= 2, got {n}"),
            });
        }
        if m < self.min_memory(n) {
            return Err(KernelError::MemoryTooSmall {
                have: m,
                need: self.min_memory(n),
            });
        }
        let t = n.trailing_zeros() as usize;
        let b = block_points(m).min(n);
        let mu = b.trailing_zeros() as usize;

        let signal = workload::random_complex_signal(n, seed);
        let mut store = ExternalStore::new();
        let input = store.alloc_from(&signal);
        let work = store.alloc(2 * n);

        let mut pe = Pe::for_hierarchy(machine);
        let buf = pe.alloc(2 * b)?;

        // --- Bit-reversal permutation pass (pure I/O) ---
        for chunk0 in (0..n).step_by(b) {
            let len = b.min(n - chunk0);
            pe.load(&store, input.at(2 * chunk0, 2 * len)?, buf, 0)?;
            for i in 0..len {
                let g = chunk0 + i;
                let rev = g.reverse_bits() >> (usize::BITS as usize - t);
                pe.store(&mut store, buf, 2 * i, work.at(2 * rev, 2)?)?;
            }
        }

        // --- Butterfly passes ---
        let mut s0 = 0usize;
        while s0 < t {
            let mu_p = mu.min(t - s0);
            let bp = 1usize << mu_p;
            let stride = 1usize << s0; // index stride between block elements
            let outer = 1usize << (s0 + mu_p);
            for high in 0..(n / outer) {
                for low in 0..stride {
                    let base = high * outer + low;
                    // Gather: re parts to buf[0..bp), im parts to buf[bp..2bp).
                    pe.load_strided(&store, work.offset() + 2 * base, 2 * stride, bp, buf, 0)?;
                    pe.load_strided(
                        &store,
                        work.offset() + 2 * base + 1,
                        2 * stride,
                        bp,
                        buf,
                        bp,
                    )?;
                    // In-memory stages s0 .. s0+mu_p.
                    let ops = {
                        let x = pe.buf_mut(buf)?;
                        let mut ops = 0u64;
                        for ls in 0..mu_p {
                            let half = 1usize << ls;
                            let span = half * 2;
                            let s_global = s0 + ls;
                            let period = 1usize << s_global; // 2^s
                            for j0 in (0..bp).step_by(span) {
                                for jj in 0..half {
                                    let j1 = j0 + jj;
                                    let j2 = j1 + half;
                                    let g1 = base + j1 * stride;
                                    let k = g1 & (period - 1); // g1 mod 2^s
                                    let angle =
                                        -std::f64::consts::PI * (k as f64) / (period as f64);
                                    let (sn, cs) = angle.sin_cos();
                                    let (ar, ai) = (x[j1], x[bp + j1]);
                                    let (br, bi) = (x[j2], x[bp + j2]);
                                    let (tr, ti) = (br * cs - bi * sn, br * sn + bi * cs);
                                    x[j1] = ar + tr;
                                    x[bp + j1] = ai + ti;
                                    x[j2] = ar - tr;
                                    x[bp + j2] = ai - ti;
                                    ops += 12; // 2 trig + 4 mul + 6 add/sub
                                }
                            }
                        }
                        ops
                    };
                    pe.count_ops(ops);
                    // Scatter back.
                    pe.store_strided(&mut store, buf, 0, work.offset() + 2 * base, 2 * stride, bp)?;
                    pe.store_strided(
                        &mut store,
                        buf,
                        bp,
                        work.offset() + 2 * base + 1,
                        2 * stride,
                        bp,
                    )?;
                }
            }
            s0 += mu_p;
        }

        // Verify against the in-memory reference FFT.
        let want = reference::fft(&signal);
        let got = store.slice(work);
        let err = reference::max_abs_diff(&want, got);
        let tol = 1e-9 * (n as f64).sqrt().max(1.0);
        if err > tol {
            return Err(KernelError::VerificationFailed {
                what: "fft",
                max_error: err,
                tolerance: tol,
            });
        }

        Ok(KernelRun {
            n,
            m,
            execution: pe.execution(),
        })
    }
}

/// The paper's Fig. 2: the block/shuffle structure of a blocked FFT.
///
/// For `N = 2^t` points and blocks of `B = 2^μ` points, the FFT runs in
/// `⌈t/μ⌉` passes; pass `p` covers butterfly stages `[p·μ, min((p+1)·μ, t))`
/// and partitions the `N` signal indices into `N/B'` blocks that can each be
/// computed entirely in local memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FftDecomposition {
    /// Number of points `N`.
    pub n: usize,
    /// Block size in complex points.
    pub block: usize,
    /// The passes, in execution order.
    pub passes: Vec<FftPass>,
}

/// One pass of the decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FftPass {
    /// Butterfly stages `[from, to)` executed by this pass.
    pub stages: (usize, usize),
    /// The index blocks; each inner vector lists the global indices (in
    /// natural, pre-bit-reversal order of the work array) handled by one
    /// in-memory sub-computation.
    pub blocks: Vec<Vec<usize>>,
}

/// Computes the block decomposition of an `n`-point FFT with `block`-point
/// in-memory blocks (both powers of two).
///
/// # Errors
///
/// Returns [`KernelError::BadParameters`] unless both arguments are powers
/// of two with `2 ≤ block ≤ n`.
pub fn decomposition(n: usize, block: usize) -> Result<FftDecomposition, KernelError> {
    if !n.is_power_of_two() || !block.is_power_of_two() || block < 2 || block > n {
        return Err(KernelError::BadParameters {
            reason: format!("need powers of two with 2 <= block <= n, got n={n}, block={block}"),
        });
    }
    let t = n.trailing_zeros() as usize;
    let mu = block.trailing_zeros() as usize;
    let mut passes = Vec::new();
    let mut s0 = 0usize;
    while s0 < t {
        let mu_p = mu.min(t - s0);
        let bp = 1usize << mu_p;
        let stride = 1usize << s0;
        let outer = 1usize << (s0 + mu_p);
        let mut blocks = Vec::with_capacity(n / bp);
        for high in 0..(n / outer) {
            for low in 0..stride {
                let base = high * outer + low;
                blocks.push((0..bp).map(|j| base + j * stride).collect());
            }
        }
        passes.push(FftPass {
            stages: (s0, s0 + mu_p),
            blocks,
        });
        s0 += mu_p;
    }
    Ok(FftDecomposition { n, block, passes })
}

impl fmt::Display for FftDecomposition {
    /// Renders the decomposition in the style of the paper's Fig. 2(b):
    /// one line per block, grouped by pass, shuffles implied between passes.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}-point FFT decomposed into {}-point in-memory blocks:",
            self.n, self.block
        )?;
        for (p, pass) in self.passes.iter().enumerate() {
            writeln!(
                f,
                "pass {} (stages {}..{}):",
                p + 1,
                pass.stages.0,
                pass.stages.1
            )?;
            for block in &pass.blocks {
                let items: Vec<String> = block.iter().map(|i| format!("{i:>3}")).collect();
                writeln!(f, "  [{}]", items.join(" "))?;
            }
            if p + 1 < self.passes.len() {
                writeln!(f, "  --- shuffle ---")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_points_fits() {
        assert_eq!(block_points(4), 2);
        assert_eq!(block_points(7), 2);
        assert_eq!(block_points(8), 4);
        assert_eq!(block_points(1024), 512);
        for m in [4usize, 9, 100, 4096] {
            assert!(2 * block_points(m) <= m.max(4));
        }
    }

    #[test]
    fn fft_verifies_across_sizes_and_memories() {
        for (n, m) in [(8, 4), (16, 4), (64, 8), (256, 32), (1024, 64)] {
            let run = Fft.run(n, m, 11).unwrap();
            assert!(run.execution.cost.comp_ops() > 0, "n={n}, m={m}");
        }
    }

    #[test]
    fn comp_ops_are_12_per_butterfly() {
        let (n, m) = (64, 16);
        let run = Fft.run(n, m, 1).unwrap();
        let t = 6u64;
        assert_eq!(run.execution.cost.comp_ops(), 12 * (n as u64 / 2) * t);
    }

    #[test]
    fn io_matches_analytic_model_when_stages_divide() {
        // t divisible by mu: every pass is full.
        let (n, m) = (4096, 32); // t = 12, mu = 4 -> 3 passes
        let run = Fft.run(n, m, 2).unwrap();
        let analytic = Fft.analytic_cost(n, m);
        assert_eq!(run.execution.cost.io_words(), analytic.io_words());
    }

    #[test]
    fn intensity_grows_logarithmically() {
        let n = 4096;
        let r16 = Fft.run(n, 2 * 16, 3).unwrap().intensity(); // B = 16
        let r256 = Fft.run(n, 2 * 256, 3).unwrap().intensity(); // B = 256
                                                                // log2 B: 4 vs 8 -> passes 3 vs ceil(12/8)=2.
                                                                // ratio of intensities should be well under 2b-growth but > 1.
        assert!(r256 > r16, "r16={r16}, r256={r256}");
        assert!(r256 / r16 < 3.0);
    }

    #[test]
    fn rejects_bad_sizes() {
        assert!(matches!(
            Fft.run(12, 64, 0),
            Err(KernelError::BadParameters { .. })
        ));
        assert!(matches!(
            Fft.run(1, 64, 0),
            Err(KernelError::BadParameters { .. })
        ));
        assert!(matches!(
            Fft.run(16, 3, 0),
            Err(KernelError::MemoryTooSmall { .. })
        ));
    }

    #[test]
    fn peak_memory_within_m() {
        let run = Fft.run(256, 40, 4).unwrap();
        assert!(run.execution.peak_memory.get() <= 40);
    }

    #[test]
    fn figure_2_structure_n16_m4() {
        // The paper's exact example: 16-point FFT, 4-point blocks.
        let d = decomposition(16, 4).unwrap();
        assert_eq!(d.passes.len(), 2);
        // Pass 1: stages 0..2, blocks of consecutive indices.
        assert_eq!(d.passes[0].stages, (0, 2));
        assert_eq!(d.passes[0].blocks.len(), 4);
        assert_eq!(d.passes[0].blocks[0], vec![0, 1, 2, 3]);
        assert_eq!(d.passes[0].blocks[3], vec![12, 13, 14, 15]);
        // Pass 2: stages 2..4, blocks strided by 4 (the shuffle).
        assert_eq!(d.passes[1].stages, (2, 4));
        assert_eq!(d.passes[1].blocks[0], vec![0, 4, 8, 12]);
        assert_eq!(d.passes[1].blocks[1], vec![1, 5, 9, 13]);
    }

    #[test]
    fn decomposition_blocks_partition_indices() {
        for (n, b) in [(16, 4), (64, 4), (64, 8), (256, 16), (32, 2)] {
            let d = decomposition(n, b).unwrap();
            for pass in &d.passes {
                let mut all: Vec<usize> = pass.blocks.iter().flatten().copied().collect();
                all.sort_unstable();
                assert_eq!(all, (0..n).collect::<Vec<_>>(), "n={n}, b={b}");
                for block in &pass.blocks {
                    assert!(block.len() <= b);
                }
            }
            // Stage coverage: passes tile 0..t.
            let t = n.trailing_zeros() as usize;
            assert_eq!(d.passes.first().unwrap().stages.0, 0);
            assert_eq!(d.passes.last().unwrap().stages.1, t);
        }
    }

    #[test]
    fn decomposition_rejects_bad_args() {
        assert!(decomposition(12, 4).is_err());
        assert!(decomposition(16, 3).is_err());
        assert!(decomposition(16, 1).is_err());
        assert!(decomposition(8, 16).is_err());
    }

    #[test]
    fn display_renders_figure() {
        let d = decomposition(16, 4).unwrap();
        let art = d.to_string();
        assert!(art.contains("pass 1"));
        assert!(art.contains("pass 2"));
        assert!(art.contains("shuffle"));
        assert!(art.contains("[  0   4   8  12]"));
    }
}
