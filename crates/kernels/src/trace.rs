//! Canonical tagged access traces: the natural (unblocked) access sequence
//! of each computation, as a streamed iterator of read/write-tagged
//! accesses.
//!
//! The one-pass capacity sweeps ([`crate::sweep::capacity_sweep`]) measure
//! the *cache-model* intensity curve of a computation: its canonical trace
//! replayed through an automatically managed LRU memory of capacity `M`,
//! for every `M` at once. That needs each kernel to name its trace — the
//! access order the textbook (naive) algorithm performs, with a dense
//! address map, an exact length, and the operation count of the traced
//! computation. [`AccessTrace`] packages exactly that, and
//! [`Kernel::access_trace`](crate::Kernel::access_trace) returns it.
//!
//! Every access carries its direction ([`balance_core::Access`]): a store
//! into a result location is a [`AccessKind::Write`](balance_core::AccessKind),
//! everything else a read, with read-modify-write updates (accumulations,
//! in-place eliminations) tagged as writes. The tags feed the
//! device-realistic engines' dirty-write-back ledger
//! ([`balance_machine::TrafficProfile`]); the word-granular all-read
//! sweeps simply drop them via [`AccessTrace::into_addrs`], whose
//! [`AddrIter`] adapter forwards the underlying iterator's O(1) `nth` so
//! segmented range-slicing stays cheap.
//!
//! Address maps are dense and documented per builder; lengths are exact
//! (the stack-distance engine and the replay model both pre-size from
//! them, so honesty is pinned by test); operation counts follow the same
//! conventions as each kernel's `analytic_cost` (e.g. `2N³` for matmul,
//! comparisons for sorting).
//!
//! Every trace streams in O(1) memory: builders return counter-decoding
//! iterators (or reuse the streaming generators like
//! [`NaiveTrace`](crate::matmul::NaiveTrace)), never materialized vectors.

use core::fmt;

use balance_core::Access;

use crate::matmul::NaiveTrace;

/// A kernel's canonical access trace: a streamed, read/write-tagged
/// iterator plus the exact metadata the capacity-sweep engines pre-size
/// and price with.
pub struct AccessTrace {
    accesses: Box<dyn Iterator<Item = Access> + Send>,
    len: u64,
    addr_bound: u64,
    comp_ops: u64,
}

impl fmt::Debug for AccessTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AccessTrace")
            .field("len", &self.len)
            .field("addr_bound", &self.addr_bound)
            .field("comp_ops", &self.comp_ops)
            .finish_non_exhaustive()
    }
}

impl AccessTrace {
    /// Packages a tagged trace. `len` must be the exact number of accesses
    /// the iterator yields and every address must lie in `[0, addr_bound)`
    /// — both are contract, both are pinned by the registry tests.
    #[must_use]
    pub fn new(
        accesses: impl Iterator<Item = Access> + Send + 'static,
        len: u64,
        addr_bound: u64,
        comp_ops: u64,
    ) -> Self {
        AccessTrace {
            accesses: Box::new(accesses),
            len,
            addr_bound,
            comp_ops,
        }
    }

    /// Exact number of accesses in the trace.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the trace has no accesses.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Exclusive upper bound on every address (the dense address-space
    /// size — what the direct-indexed engines size their tables from).
    #[must_use]
    pub fn addr_bound(&self) -> u64 {
        self.addr_bound
    }

    /// Operations the traced computation performs (independent of any
    /// memory size — the numerator of every capacity point's intensity).
    #[must_use]
    pub fn comp_ops(&self) -> u64 {
        self.comp_ops
    }

    /// Consumes the trace, yielding the tagged access stream — the
    /// device-realistic engines' input.
    #[must_use]
    pub fn into_accesses(self) -> Box<dyn Iterator<Item = Access> + Send> {
        self.accesses
    }

    /// Consumes the trace, yielding the bare address stream (tags
    /// dropped) — the word-granular all-read engines' input. The adapter
    /// forwards `nth`, so positional skips stay O(1) where the underlying
    /// generator decodes them in closed form.
    #[must_use]
    pub fn into_addrs(self) -> AddrIter<Box<dyn Iterator<Item = Access> + Send>> {
        AddrIter(self.accesses)
    }
}

/// Address-projecting adapter over a tagged access iterator: yields
/// `access.addr`, forwarding `nth` and `size_hint` (a plain
/// `map(|a| a.addr)` would degrade the streaming generators' O(1)
/// positional skip to a scan — the segmented parallel engine's per-range
/// slicing depends on it).
#[derive(Debug, Clone)]
pub struct AddrIter<I>(I);

impl<I: Iterator<Item = Access>> AddrIter<I> {
    /// Wraps a tagged iterator.
    pub fn new(inner: I) -> Self {
        AddrIter(inner)
    }
}

impl<I: Iterator<Item = Access>> Iterator for AddrIter<I> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        self.0.next().map(|a| a.addr)
    }

    fn nth(&mut self, n: usize) -> Option<u64> {
        self.0.nth(n).map(|a| a.addr)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

impl<I: ExactSizeIterator<Item = Access>> ExactSizeIterator for AddrIter<I> {}

/// Naive triple-loop matmul (`ijk` order): `A` at `[0, n²)`, `B` at
/// `[n², 2n²)`, `C` at `[2n², 3n²)`; `3n³` accesses (the `C`
/// accumulation tagged a write), `2n³` ops. Reuses the streaming
/// [`NaiveTrace`] generator — its `ExactSizeIterator::len` is the trace
/// length (honesty pinned by regression test).
#[must_use]
pub fn matmul(n: usize) -> AccessTrace {
    let t = NaiveTrace::new(n);
    let len = t.len() as u64;
    let n64 = n as u64;
    AccessTrace::new(t, len, 3 * n64 * n64, 2 * n64.pow(3))
}

/// Unblocked right-looking Gaussian elimination (no pivoting) on `A` at
/// `[0, n²)`: for each `k`, each row `i > k` reads `A[i][k]`, `A[k][k]`,
/// writes the multiplier back, then updates its trailing row (`A[k][j]`
/// read, `A[i][j]` read then written). Ops: one divide per multiplier,
/// two per update — the `2n³/3` leading term.
#[must_use]
pub fn triangularization(n: usize) -> AccessTrace {
    let n64 = n as u64;
    let (mut len, mut ops) = (0u64, 0u64);
    for k in 0..n64 {
        let rows = n64 - k - 1;
        let cols = rows; // trailing columns j in (k, n)
        len += rows * (3 + 3 * cols);
        ops += rows * (1 + 2 * cols);
    }
    let iter = (0..n as u64).flat_map(move |k| {
        (k + 1..n64).flat_map(move |i| {
            [
                Access::read(i * n64 + k),
                Access::read(k * n64 + k),
                Access::write(i * n64 + k), // multiplier stored in place
            ]
            .into_iter()
            .chain((k + 1..n64).flat_map(move |j| {
                [
                    Access::read(k * n64 + j),
                    Access::read(i * n64 + j),
                    Access::write(i * n64 + j), // trailing update in place
                ]
            }))
        })
    });
    AccessTrace::new(iter, len, n64 * n64, ops)
}

/// The canonical grid side per dimension: large enough that the grid
/// outgrows the interesting cache sizes, small enough that a full Jacobi
/// sweep stays cheap (`side^d` cells).
#[must_use]
pub fn grid_side(dim: usize) -> usize {
    match dim {
        1 => 64,
        2 => 16,
        3 => 8,
        _ => 6,
    }
}

/// Jacobi relaxation, `iters` ping-pong sweeps over a periodic
/// `side^dim` grid ([`grid_side`] fixes the side, matching the kernel's
/// convention that the problem size is the *iteration count*). Source and
/// destination grids alternate between `[0, cells)` and `[cells, 2·cells)`;
/// each cell reads its `2·dim + 1`-point star and writes its update
/// (`2·dim + 1` ops).
#[must_use]
pub fn grid(dim: usize, iters: usize) -> AccessTrace {
    assert!((1..=4).contains(&dim), "dimension must be 1..=4");
    let side = grid_side(dim) as u64;
    let cells: u64 = side.pow(dim as u32);
    let star = 2 * dim as u64 + 1;
    // Per cell: probe 0 reads self, probes 1..star read the ∓/± neighbor
    // along each axis (periodic, decoded from the cell index per axis
    // stride), probe `star` writes the destination cell.
    let iter = (0..iters as u64).flat_map(move |sweep| {
        let (src, dst) = if sweep % 2 == 0 { (0, cells) } else { (cells, 0) };
        (0..cells).flat_map(move |c| {
            (0..star + 1).map(move |probe| {
                if probe == 0 {
                    return Access::read(src + c);
                }
                if probe == star {
                    return Access::write(dst + c);
                }
                let axis = (probe - 1) / 2;
                let stride = side.pow(u32::try_from(axis).unwrap_or_else(|_| panic!("dim <= 4")));
                let x = (c / stride) % side;
                let wrapped = if probe % 2 == 1 {
                    (x + side - 1) % side
                } else {
                    (x + 1) % side
                };
                Access::read(src + c - x * stride + wrapped * stride)
            })
        })
    });
    let len = iters as u64 * cells * (star + 1);
    AccessTrace::new(iter, len, 2 * cells, iters as u64 * cells * star)
}

/// In-place iterative radix-2 decimation-in-time FFT over `n` complex
/// points (`n` a power of two), one complex point = two words at
/// `[2i, 2i+1]`: each of the `log₂n` stages runs `n/2` butterflies, each
/// reading then writing both points (8 word accesses — the last 4 are the
/// write-backs of the butterfly result — 10 real ops). Returns `None`
/// when `n` is not a power of two or is below 2 — the same restriction as
/// the kernel.
#[must_use]
pub fn fft(n: usize) -> Option<AccessTrace> {
    if n < 2 || !n.is_power_of_two() {
        return None;
    }
    let n64 = n as u64;
    let stages = n64.trailing_zeros() as u64;
    let half = n64 / 2;
    let iter = (0..stages).flat_map(move |s| {
        (0..half).flat_map(move |b| {
            let span = 1u64 << s;
            let j = b & (span - 1);
            let a = ((b >> s) << (s + 1)) + j;
            let p = a + span;
            // Read both complex points, then write both back.
            [
                Access::read(2 * a),
                Access::read(2 * a + 1),
                Access::read(2 * p),
                Access::read(2 * p + 1),
                Access::write(2 * a),
                Access::write(2 * a + 1),
                Access::write(2 * p),
                Access::write(2 * p + 1),
            ]
        })
    });
    Some(AccessTrace::new(
        iter,
        stages * half * 8,
        2 * n64,
        10 * half * stages,
    ))
}

/// Ping-pong merge sort over `n` keys: `⌈log₂n⌉` passes, each streaming
/// every key from the source buffer (read) to the destination buffer
/// (write; buffers alternate between `[0, n)` and `[n, 2n)`); one
/// comparison per key per pass — the unit the sorting kernel counts.
#[must_use]
pub fn sort(n: usize) -> AccessTrace {
    let n64 = n as u64;
    let passes = u64::from(n.next_power_of_two().trailing_zeros());
    let iter = (0..passes).flat_map(move |p| {
        let (src, dst) = if p % 2 == 0 { (0, n64) } else { (n64, 0) };
        (0..n64).flat_map(move |i| [Access::read(src + i), Access::write(dst + i)])
    });
    AccessTrace::new(iter, passes * 2 * n64, 2 * n64, passes * n64)
}

/// Row-major matrix–vector product `y = A·x`: `A` at `[0, n²)`, `x` at
/// `[n², n² + n)`, `y` at `[n² + n, n² + 2n)`; each row streams `A[i][·]`
/// against `x`, then writes `y[i]`. `2n²` ops.
#[must_use]
pub fn matvec(n: usize) -> AccessTrace {
    let n64 = n as u64;
    let x0 = n64 * n64;
    let y0 = x0 + n64;
    let iter = (0..n64).flat_map(move |i| {
        (0..n64)
            .flat_map(move |j| [Access::read(i * n64 + j), Access::read(x0 + j)])
            .chain([Access::write(y0 + i)])
    });
    AccessTrace::new(iter, n64 * (2 * n64 + 1), y0 + n64, 2 * n64 * n64)
}

/// Forward substitution `L·x = b` on a dense lower triangle: `L` at
/// `[0, n²)`, `b` at `[n², n² + n)`, `x` at `[n² + n, n² + 2n)`; row `i`
/// streams its `i` computed prefix entries of `x` against `L[i][·]`, reads
/// `b[i]` and the diagonal, writes `x[i]`. `n²` ops (the kernel's
/// convention).
#[must_use]
pub fn trisolve(n: usize) -> AccessTrace {
    let n64 = n as u64;
    let b0 = n64 * n64;
    let x0 = b0 + n64;
    let iter = (0..n64).flat_map(move |i| {
        (0..i)
            .flat_map(move |j| [Access::read(i * n64 + j), Access::read(x0 + j)])
            .chain([
                Access::read(b0 + i),
                Access::read(i * n64 + i),
                Access::write(x0 + i),
            ])
    });
    AccessTrace::new(iter, n64 * n64 + 2 * n64, x0 + n64, n64 * n64)
}

/// Row-major transpose `B = Aᵀ`: `A` at `[0, n²)`, `B` at `[n², 2n²)`;
/// each element is read once and written once (the column-strided write is
/// where the cache model hurts). `n²` ops — the kernel's per-element move
/// convention.
#[must_use]
pub fn transpose(n: usize) -> AccessTrace {
    let n64 = n as u64;
    let b0 = n64 * n64;
    let iter = (0..n64).flat_map(move |i| {
        (0..n64).flat_map(move |j| {
            [Access::read(i * n64 + j), Access::write(b0 + j * n64 + i)]
        })
    });
    AccessTrace::new(iter, 2 * n64 * n64, 2 * n64 * n64, n64 * n64)
}

/// Direct 1-d convolution of an `n`-point output with `taps` filter taps:
/// `x` at `[0, n + taps − 1)`, `w` next, `y` last; each output point
/// streams its window against the filter, then writes. `2·taps·n` ops.
#[must_use]
pub fn convolution(n: usize, taps: usize) -> AccessTrace {
    let (n64, k) = (n as u64, taps as u64);
    let w0 = n64 + k - 1;
    let y0 = w0 + k;
    let iter = (0..n64).flat_map(move |i| {
        (0..k)
            .flat_map(move |t| [Access::read(i + t), Access::read(w0 + t)])
            .chain([Access::write(y0 + i)])
    });
    AccessTrace::new(iter, n64 * (2 * k + 1), y0 + n64, 2 * k * n64)
}

/// `v` successive matrix–vector products against one `n × n` matrix:
/// the [`matvec`] trace repeated per vector (`A` re-streamed each time —
/// the reuse a capacity ≥ `n²` converts into hits). `X` columns at
/// `[n², n² + v·n)`, `Y` at `[n² + v·n, n² + 2v·n)`. `2n²v` ops.
#[must_use]
pub fn multi_matvec(n: usize, v: usize) -> AccessTrace {
    let (n64, v64) = (n as u64, v as u64);
    let x0 = n64 * n64;
    let y0 = x0 + v64 * n64;
    let iter = (0..v64).flat_map(move |vec| {
        (0..n64).flat_map(move |i| {
            (0..n64)
                .flat_map(move |j| {
                    [Access::read(i * n64 + j), Access::read(x0 + vec * n64 + j)]
                })
                .chain([Access::write(y0 + vec * n64 + i)])
        })
    });
    AccessTrace::new(
        iter,
        v64 * n64 * (2 * n64 + 1),
        y0 + v64 * n64,
        2 * n64 * n64 * v64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(trace: AccessTrace) {
        let (len, bound) = (trace.len(), trace.addr_bound());
        let mut count = 0u64;
        let mut max = 0u64;
        let mut writes = 0u64;
        for a in trace.into_accesses() {
            count += 1;
            max = max.max(a.addr + 1);
            writes += u64::from(a.is_write());
        }
        assert_eq!(count, len, "declared length must be exact");
        assert!(max <= bound, "address {max} exceeds bound {bound}");
        assert!(writes > 0, "every computation stores its result");
        assert!(writes < count, "a trace is never writes alone");
    }

    #[test]
    fn every_builder_reports_exact_length_and_bound() {
        check(matmul(7));
        check(triangularization(9));
        check(grid(2, 3));
        check(grid(3, 2));
        check(fft(16).unwrap());
        check(sort(10));
        check(matvec(8));
        check(trisolve(8));
        check(transpose(6));
        check(convolution(20, 4));
        check(multi_matvec(6, 3));
    }

    #[test]
    fn fft_rejects_non_powers_of_two() {
        assert!(fft(12).is_none());
        assert!(fft(1).is_none());
        assert!(fft(0).is_none());
        assert!(fft(8).is_some());
    }

    #[test]
    fn matmul_trace_is_the_streaming_naive_trace() {
        let t = matmul(5);
        assert_eq!(t.len(), 3 * 125);
        assert_eq!(t.comp_ops(), 2 * 125);
        let addrs: Vec<u64> = t.into_addrs().collect();
        assert_eq!(addrs, crate::matmul::naive_address_trace(5));
    }

    #[test]
    fn addr_iter_forwards_positional_skips() {
        // AddrIter::nth must agree with stepping — through the Box and
        // through NaiveTrace's closed-form decode.
        let stepped: Vec<u64> = matmul(4).into_addrs().collect();
        for start in [0usize, 1, 7, 100] {
            let mut it = matmul(4).into_addrs();
            assert_eq!(it.nth(start), stepped.get(start).copied(), "skip {start}");
        }
        let mut it = AddrIter::new(NaiveTrace::new(4));
        assert_eq!(it.len(), 3 * 64);
        assert_eq!(it.nth(5), Some(stepped[5]));
        assert_eq!(it.len(), 3 * 64 - 6);
    }

    #[test]
    fn grid_trace_touches_both_buffers() {
        let t = grid(2, 2);
        let cells = 16u64 * 16;
        assert_eq!(t.addr_bound(), 2 * cells);
        let accesses: Vec<Access> = t.into_accesses().collect();
        // Sweep 0 writes the upper buffer, sweep 1 writes it back.
        assert!(accesses.iter().any(|a| a.is_write() && a.addr >= cells));
        assert!(accesses.iter().any(|a| a.is_write() && a.addr < cells));
        // Per cell: 4 star reads + self + write.
        assert_eq!(accesses.len() as u64, 2 * cells * 6);
        let writes = accesses.iter().filter(|a| a.is_write()).count() as u64;
        assert_eq!(writes, 2 * cells, "exactly one write per cell per sweep");
    }

    #[test]
    fn sort_trace_alternates_buffers_and_tags_stores() {
        let t = sort(4); // 2 passes
        let accesses: Vec<Access> = t.into_accesses().collect();
        assert_eq!(accesses.len(), 2 * 2 * 4);
        assert_eq!(
            &accesses[..4],
            &[
                Access::read(0),
                Access::write(4),
                Access::read(1),
                Access::write(5)
            ]
        ); // pass 0: [0,n) -> [n,2n)
        assert_eq!(
            &accesses[8..12],
            &[
                Access::read(4),
                Access::write(0),
                Access::read(5),
                Access::write(1)
            ]
        ); // pass 1: back
    }

    #[test]
    fn in_place_kernels_write_their_updates() {
        // Triangularization stores every multiplier and trailing update in
        // place; the FFT writes each butterfly's 4 result words.
        let tri: Vec<Access> = triangularization(4).into_accesses().collect();
        let writes = tri.iter().filter(|a| a.is_write()).count();
        assert_eq!(writes, tri.len() / 3, "one write per 3-access group");
        let fft_trace: Vec<Access> = fft(8).unwrap().into_accesses().collect();
        let fft_writes = fft_trace.iter().filter(|a| a.is_write()).count();
        assert_eq!(fft_writes, fft_trace.len() / 2, "4 of each 8 butterfly words");
    }

    #[test]
    fn empty_traces_are_empty() {
        assert!(sort(1).is_empty()); // 0 passes
        assert_eq!(sort(1).len(), 0);
        assert!(!matvec(1).is_empty());
    }
}
