//! Canonical word-address traces: the natural (unblocked) access sequence
//! of each computation, as a streamed iterator.
//!
//! The one-pass capacity sweeps ([`crate::sweep::capacity_sweep`]) measure
//! the *cache-model* intensity curve of a computation: its canonical trace
//! replayed through an automatically managed LRU memory of capacity `M`,
//! for every `M` at once. That needs each kernel to name its trace — the
//! access order the textbook (naive) algorithm performs, with a dense
//! address map, an exact length, and the operation count of the traced
//! computation. [`AccessTrace`] packages exactly that, and
//! [`Kernel::access_trace`](crate::Kernel::access_trace) returns it.
//!
//! Address maps are dense and documented per builder; lengths are exact
//! (the stack-distance engine and the replay model both pre-size from
//! them, so honesty is pinned by test); operation counts follow the same
//! conventions as each kernel's `analytic_cost` (e.g. `2N³` for matmul,
//! comparisons for sorting).
//!
//! Every trace streams in O(1) memory: builders return counter-decoding
//! iterators (or reuse the streaming generators like
//! [`NaiveTrace`](crate::matmul::NaiveTrace)), never materialized vectors.

use core::fmt;

use crate::matmul::NaiveTrace;

/// A kernel's canonical access trace: a streamed address iterator plus the
/// exact metadata the capacity-sweep engines pre-size and price with.
pub struct AccessTrace {
    addrs: Box<dyn Iterator<Item = u64> + Send>,
    len: u64,
    addr_bound: u64,
    comp_ops: u64,
}

impl fmt::Debug for AccessTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AccessTrace")
            .field("len", &self.len)
            .field("addr_bound", &self.addr_bound)
            .field("comp_ops", &self.comp_ops)
            .finish_non_exhaustive()
    }
}

impl AccessTrace {
    /// Packages a trace. `len` must be the exact number of addresses the
    /// iterator yields and every address must lie in `[0, addr_bound)` —
    /// both are contract, both are pinned by the registry tests.
    #[must_use]
    pub fn new(
        addrs: impl Iterator<Item = u64> + Send + 'static,
        len: u64,
        addr_bound: u64,
        comp_ops: u64,
    ) -> Self {
        AccessTrace {
            addrs: Box::new(addrs),
            len,
            addr_bound,
            comp_ops,
        }
    }

    /// Exact number of addresses in the trace.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the trace has no accesses.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Exclusive upper bound on every address (the dense address-space
    /// size — what the direct-indexed engines size their tables from).
    #[must_use]
    pub fn addr_bound(&self) -> u64 {
        self.addr_bound
    }

    /// Operations the traced computation performs (independent of any
    /// memory size — the numerator of every capacity point's intensity).
    #[must_use]
    pub fn comp_ops(&self) -> u64 {
        self.comp_ops
    }

    /// Consumes the trace, yielding the address stream.
    #[must_use]
    pub fn into_addrs(self) -> Box<dyn Iterator<Item = u64> + Send> {
        self.addrs
    }
}

/// Naive triple-loop matmul (`ijk` order): `A` at `[0, n²)`, `B` at
/// `[n², 2n²)`, `C` at `[2n², 3n²)`; `3n³` addresses, `2n³` ops. Reuses
/// the streaming [`NaiveTrace`] generator — its `ExactSizeIterator::len`
/// is the trace length (honesty pinned by regression test).
#[must_use]
pub fn matmul(n: usize) -> AccessTrace {
    let t = NaiveTrace::new(n);
    let len = t.len() as u64;
    let n64 = n as u64;
    AccessTrace::new(t, len, 3 * n64 * n64, 2 * n64.pow(3))
}

/// Unblocked right-looking Gaussian elimination (no pivoting) on `A` at
/// `[0, n²)`: for each `k`, each row `i > k` reads `A[i][k]`, `A[k][k]`,
/// writes the multiplier back, then updates its trailing row (`A[k][j]`
/// read, `A[i][j]` read+write). Ops: one divide per multiplier, two per
/// update — the `2n³/3` leading term.
#[must_use]
pub fn triangularization(n: usize) -> AccessTrace {
    let n64 = n as u64;
    let (mut len, mut ops) = (0u64, 0u64);
    for k in 0..n64 {
        let rows = n64 - k - 1;
        let cols = rows; // trailing columns j in (k, n)
        len += rows * (3 + 3 * cols);
        ops += rows * (1 + 2 * cols);
    }
    let iter = (0..n as u64).flat_map(move |k| {
        (k + 1..n64).flat_map(move |i| {
            [i * n64 + k, k * n64 + k, i * n64 + k]
                .into_iter()
                .chain((k + 1..n64).flat_map(move |j| {
                    [k * n64 + j, i * n64 + j, i * n64 + j]
                }))
        })
    });
    AccessTrace::new(iter, len, n64 * n64, ops)
}

/// The canonical grid side per dimension: large enough that the grid
/// outgrows the interesting cache sizes, small enough that a full Jacobi
/// sweep stays cheap (`side^d` cells).
#[must_use]
pub fn grid_side(dim: usize) -> usize {
    match dim {
        1 => 64,
        2 => 16,
        3 => 8,
        _ => 6,
    }
}

/// Jacobi relaxation, `iters` ping-pong sweeps over a periodic
/// `side^dim` grid ([`grid_side`] fixes the side, matching the kernel's
/// convention that the problem size is the *iteration count*). Source and
/// destination grids alternate between `[0, cells)` and `[cells, 2·cells)`;
/// each cell reads its `2·dim + 1`-point star and writes its update
/// (`2·dim + 1` ops).
#[must_use]
pub fn grid(dim: usize, iters: usize) -> AccessTrace {
    assert!((1..=4).contains(&dim), "dimension must be 1..=4");
    let side = grid_side(dim) as u64;
    let cells: u64 = side.pow(dim as u32);
    let star = 2 * dim as u64 + 1;
    // Per cell: probe 0 reads self, probes 1..star read the ∓/± neighbor
    // along each axis (periodic, decoded from the cell index per axis
    // stride), probe `star` writes the destination cell.
    let iter = (0..iters as u64).flat_map(move |sweep| {
        let (src, dst) = if sweep % 2 == 0 { (0, cells) } else { (cells, 0) };
        (0..cells).flat_map(move |c| {
            (0..star + 1).map(move |probe| {
                if probe == 0 {
                    return src + c;
                }
                if probe == star {
                    return dst + c;
                }
                let axis = (probe - 1) / 2;
                let stride = side.pow(u32::try_from(axis).unwrap_or_else(|_| panic!("dim <= 4")));
                let x = (c / stride) % side;
                let wrapped = if probe % 2 == 1 {
                    (x + side - 1) % side
                } else {
                    (x + 1) % side
                };
                src + c - x * stride + wrapped * stride
            })
        })
    });
    let len = iters as u64 * cells * (star + 1);
    AccessTrace::new(iter, len, 2 * cells, iters as u64 * cells * star)
}

/// In-place iterative radix-2 decimation-in-time FFT over `n` complex
/// points (`n` a power of two), one complex point = two words at
/// `[2i, 2i+1]`: each of the `log₂n` stages runs `n/2` butterflies, each
/// reading then writing both points (8 word accesses, 10 real ops).
/// Returns `None` when `n` is not a power of two or is below 2 — the same
/// restriction as the kernel.
#[must_use]
pub fn fft(n: usize) -> Option<AccessTrace> {
    if n < 2 || !n.is_power_of_two() {
        return None;
    }
    let n64 = n as u64;
    let stages = n64.trailing_zeros() as u64;
    let half = n64 / 2;
    let iter = (0..stages).flat_map(move |s| {
        (0..half).flat_map(move |b| {
            let span = 1u64 << s;
            let j = b & (span - 1);
            let a = ((b >> s) << (s + 1)) + j;
            let p = a + span;
            // Read both complex points, then write both back.
            [2 * a, 2 * a + 1, 2 * p, 2 * p + 1, 2 * a, 2 * a + 1, 2 * p, 2 * p + 1]
        })
    });
    Some(AccessTrace::new(
        iter,
        stages * half * 8,
        2 * n64,
        10 * half * stages,
    ))
}

/// Ping-pong merge sort over `n` keys: `⌈log₂n⌉` passes, each streaming
/// every key from the source buffer to the destination buffer (buffers
/// alternate between `[0, n)` and `[n, 2n)`); one comparison per key per
/// pass — the unit the sorting kernel counts.
#[must_use]
pub fn sort(n: usize) -> AccessTrace {
    let n64 = n as u64;
    let passes = u64::from(n.next_power_of_two().trailing_zeros());
    let iter = (0..passes).flat_map(move |p| {
        let (src, dst) = if p % 2 == 0 { (0, n64) } else { (n64, 0) };
        (0..n64).flat_map(move |i| [src + i, dst + i])
    });
    AccessTrace::new(iter, passes * 2 * n64, 2 * n64, passes * n64)
}

/// Row-major matrix–vector product `y = A·x`: `A` at `[0, n²)`, `x` at
/// `[n², n² + n)`, `y` at `[n² + n, n² + 2n)`; each row streams `A[i][·]`
/// against `x`, then writes `y[i]`. `2n²` ops.
#[must_use]
pub fn matvec(n: usize) -> AccessTrace {
    let n64 = n as u64;
    let x0 = n64 * n64;
    let y0 = x0 + n64;
    let iter = (0..n64).flat_map(move |i| {
        (0..n64)
            .flat_map(move |j| [i * n64 + j, x0 + j])
            .chain([y0 + i])
    });
    AccessTrace::new(iter, n64 * (2 * n64 + 1), y0 + n64, 2 * n64 * n64)
}

/// Forward substitution `L·x = b` on a dense lower triangle: `L` at
/// `[0, n²)`, `b` at `[n², n² + n)`, `x` at `[n² + n, n² + 2n)`; row `i`
/// streams its `i` computed prefix entries of `x` against `L[i][·]`, reads
/// `b[i]` and the diagonal, writes `x[i]`. `n²` ops (the kernel's
/// convention).
#[must_use]
pub fn trisolve(n: usize) -> AccessTrace {
    let n64 = n as u64;
    let b0 = n64 * n64;
    let x0 = b0 + n64;
    let iter = (0..n64).flat_map(move |i| {
        (0..i)
            .flat_map(move |j| [i * n64 + j, x0 + j])
            .chain([b0 + i, i * n64 + i, x0 + i])
    });
    AccessTrace::new(iter, n64 * n64 + 2 * n64, x0 + n64, n64 * n64)
}

/// Row-major transpose `B = Aᵀ`: `A` at `[0, n²)`, `B` at `[n², 2n²)`;
/// each element is read once and written once (the column-strided write is
/// where the cache model hurts). `n²` ops — the kernel's per-element move
/// convention.
#[must_use]
pub fn transpose(n: usize) -> AccessTrace {
    let n64 = n as u64;
    let b0 = n64 * n64;
    let iter = (0..n64)
        .flat_map(move |i| (0..n64).flat_map(move |j| [i * n64 + j, b0 + j * n64 + i]));
    AccessTrace::new(iter, 2 * n64 * n64, 2 * n64 * n64, n64 * n64)
}

/// Direct 1-d convolution of an `n`-point output with `taps` filter taps:
/// `x` at `[0, n + taps − 1)`, `w` next, `y` last; each output point
/// streams its window against the filter, then writes. `2·taps·n` ops.
#[must_use]
pub fn convolution(n: usize, taps: usize) -> AccessTrace {
    let (n64, k) = (n as u64, taps as u64);
    let w0 = n64 + k - 1;
    let y0 = w0 + k;
    let iter = (0..n64).flat_map(move |i| {
        (0..k).flat_map(move |t| [i + t, w0 + t]).chain([y0 + i])
    });
    AccessTrace::new(iter, n64 * (2 * k + 1), y0 + n64, 2 * k * n64)
}

/// `v` successive matrix–vector products against one `n × n` matrix:
/// the [`matvec`] trace repeated per vector (`A` re-streamed each time —
/// the reuse a capacity ≥ `n²` converts into hits). `X` columns at
/// `[n², n² + v·n)`, `Y` at `[n² + v·n, n² + 2v·n)`. `2n²v` ops.
#[must_use]
pub fn multi_matvec(n: usize, v: usize) -> AccessTrace {
    let (n64, v64) = (n as u64, v as u64);
    let x0 = n64 * n64;
    let y0 = x0 + v64 * n64;
    let iter = (0..v64).flat_map(move |vec| {
        (0..n64).flat_map(move |i| {
            (0..n64)
                .flat_map(move |j| [i * n64 + j, x0 + vec * n64 + j])
                .chain([y0 + vec * n64 + i])
        })
    });
    AccessTrace::new(
        iter,
        v64 * n64 * (2 * n64 + 1),
        y0 + v64 * n64,
        2 * n64 * n64 * v64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(trace: AccessTrace) {
        let (len, bound) = (trace.len(), trace.addr_bound());
        let mut count = 0u64;
        let mut max = 0u64;
        for a in trace.into_addrs() {
            count += 1;
            max = max.max(a + 1);
        }
        assert_eq!(count, len, "declared length must be exact");
        assert!(max <= bound, "address {max} exceeds bound {bound}");
    }

    #[test]
    fn every_builder_reports_exact_length_and_bound() {
        check(matmul(7));
        check(triangularization(9));
        check(grid(2, 3));
        check(grid(3, 2));
        check(fft(16).unwrap());
        check(sort(10));
        check(matvec(8));
        check(trisolve(8));
        check(transpose(6));
        check(convolution(20, 4));
        check(multi_matvec(6, 3));
    }

    #[test]
    fn fft_rejects_non_powers_of_two() {
        assert!(fft(12).is_none());
        assert!(fft(1).is_none());
        assert!(fft(0).is_none());
        assert!(fft(8).is_some());
    }

    #[test]
    fn matmul_trace_is_the_streaming_naive_trace() {
        let t = matmul(5);
        assert_eq!(t.len(), 3 * 125);
        assert_eq!(t.comp_ops(), 2 * 125);
        let addrs: Vec<u64> = t.into_addrs().collect();
        assert_eq!(addrs, crate::matmul::naive_address_trace(5));
    }

    #[test]
    fn grid_trace_touches_both_buffers() {
        let t = grid(2, 2);
        let cells = 16u64 * 16;
        assert_eq!(t.addr_bound(), 2 * cells);
        let addrs: Vec<u64> = t.into_addrs().collect();
        // Sweep 0 writes the upper buffer, sweep 1 writes it back.
        assert!(addrs.iter().any(|&a| a >= cells));
        assert!(addrs.iter().any(|&a| a < cells));
        // Per cell: 4 star reads + self + write.
        assert_eq!(addrs.len() as u64, 2 * cells * 6);
    }

    #[test]
    fn sort_trace_alternates_buffers() {
        let t = sort(4); // 2 passes
        let addrs: Vec<u64> = t.into_addrs().collect();
        assert_eq!(addrs.len(), 2 * 2 * 4);
        assert_eq!(&addrs[..4], &[0, 4, 1, 5]); // pass 0: [0,n) -> [n,2n)
        assert_eq!(&addrs[8..12], &[4, 0, 5, 1]); // pass 1: back
    }

    #[test]
    fn empty_traces_are_empty() {
        assert!(sort(1).is_empty()); // 0 passes
        assert_eq!(sort(1).len(), 0);
        assert!(!matvec(1).is_empty());
    }
}
