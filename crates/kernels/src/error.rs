//! Errors raised by kernel execution.

use core::fmt;

use balance_machine::MachineError;

/// Errors raised while running an instrumented kernel.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum KernelError {
    /// The simulated PE rejected an operation (usually: the working set did
    /// not fit in `M`).
    Machine(MachineError),
    /// The supplied memory is below the kernel's minimum working set for
    /// this problem size.
    MemoryTooSmall {
        /// Supplied memory, in words.
        have: usize,
        /// Minimum required, in words.
        need: usize,
    },
    /// A parameter combination is unsupported.
    BadParameters {
        /// Human-readable explanation.
        reason: String,
    },
    /// A resource budget cannot be met even by the most degraded
    /// measurement engine (see `sweep::robust_capacity_profile`).
    BudgetExhausted {
        /// The limit that still trips on the floor engine.
        reason: String,
    },
    /// A replay was stopped by an injected fault or a checkpoint
    /// persistence failure before producing a profile.
    Interrupted {
        /// What interrupted the replay.
        reason: String,
    },
    /// The computed output did not match the reference implementation.
    VerificationFailed {
        /// What was being verified.
        what: &'static str,
        /// Worst absolute/relative discrepancy observed.
        max_error: f64,
        /// The tolerance that was exceeded.
        tolerance: f64,
    },
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::Machine(e) => write!(f, "machine error: {e}"),
            KernelError::MemoryTooSmall { have, need } => {
                write!(f, "memory too small: have {have} words, need {need}")
            }
            KernelError::BadParameters { reason } => write!(f, "bad parameters: {reason}"),
            KernelError::BudgetExhausted { reason } => {
                write!(f, "budget exhausted: {reason}")
            }
            KernelError::Interrupted { reason } => write!(f, "replay interrupted: {reason}"),
            KernelError::VerificationFailed {
                what,
                max_error,
                tolerance,
            } => write!(
                f,
                "verification failed for {what}: max error {max_error:.3e} exceeds {tolerance:.3e}"
            ),
        }
    }
}

impl std::error::Error for KernelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KernelError::Machine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MachineError> for KernelError {
    fn from(e: MachineError) -> Self {
        KernelError::Machine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = KernelError::from(MachineError::ZeroStride);
        assert!(e.to_string().contains("machine error"));
        assert!(std::error::Error::source(&e).is_some());

        let e = KernelError::MemoryTooSmall { have: 3, need: 12 };
        assert!(e.to_string().contains("12"));
        assert!(std::error::Error::source(&e).is_none());

        let e = KernelError::VerificationFailed {
            what: "matmul",
            max_error: 1.0,
            tolerance: 1e-9,
        };
        assert!(e.to_string().contains("matmul"));
    }
}
