//! Verification strategies for kernel runs.
//!
//! Every kernel run is checked against ground truth, but *how* is a cost
//! knob. The default [`Verify::Full`] recomputes the uninstrumented
//! reference (`O(n³)` for the matrix kernels) — bulletproof, but it
//! dominates sweep wall-clock at large `n` because the sweep re-runs the
//! kernel once per memory size while the reference cost never shrinks.
//!
//! [`Verify::Freivalds`] replaces the recomputation with Freivalds'
//! randomized check: to test `C = A·B`, draw a random `±1` vector `x` and
//! compare `A·(B·x)` with `C·x` — three matrix–vector products, `O(n²)`
//! per round instead of `O(n³)`. A wrong product survives one round with
//! probability at most ½ in the exact-arithmetic adversarial model, and in
//! floating point a blocked-algorithm bug (lost panel, misindexed tile)
//! perturbs whole rows and is caught essentially always; `k` rounds drive
//! the error exponent down further. The same idea verifies the LU
//! factorization (`L·(U·x)` vs `A·x`) and the triangular solve (residual
//! `L·x̂` vs `b`, which is already `O(n²)` and deterministic).
//!
//! All randomness is drawn from the workspace's deterministic `rand` shim,
//! seeded from the run's own `(seed, round)` — verification is replayable
//! and identical between serial and parallel sweep executors.

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};

use crate::error::KernelError;

/// How a kernel run verifies its numeric output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Verify {
    /// Recompute the full uninstrumented reference (`O(n³)` for matrix
    /// kernels) and compare elementwise. The default.
    #[default]
    Full,
    /// Freivalds-style randomized check: `rounds` independent `O(n²)`
    /// probes. Kernels without a randomized check fall back to `Full`.
    Freivalds {
        /// Number of independent probe vectors.
        rounds: u32,
    },
    /// Skip verification entirely (timing studies of already-verified
    /// configurations only).
    None,
}

impl Verify {
    /// The recommended policy for a given problem size: `Full` while the
    /// reference is cheap (`n ≤ 64`), two Freivalds rounds beyond.
    #[must_use]
    pub fn auto(n: usize) -> Verify {
        if n <= 64 {
            Verify::Full
        } else {
            Verify::Freivalds { rounds: 2 }
        }
    }
}

/// A deterministic `±1` probe vector for round `round` of a check seeded
/// with `seed`.
fn probe_vector(n: usize, seed: u64, round: u32) -> Vec<f64> {
    // Distinct stream per round; the xor constant decorrelates the probe
    // from the workload streams derived from the same user seed.
    let mut rng = StdRng::seed_from_u64(seed ^ 0xf7ea_1d5d_u64.rotate_left(round));
    (0..n)
        .map(|_| if rng.gen_range(0u32..2) == 0 { -1.0 } else { 1.0 })
        .collect()
}

/// `y = M·x` for a row-major `n × n` matrix, alongside `Σ|m_ij·x_j|` per
/// row — the magnitude bound the comparison tolerances scale with.
fn matvec_with_abs(m: &[f64], x: &[f64], n: usize) -> (Vec<f64>, Vec<f64>) {
    let mut y = vec![0.0; n];
    let mut yabs = vec![0.0; n];
    for i in 0..n {
        let (mut s, mut sa) = (0.0, 0.0);
        for j in 0..n {
            let t = m[i * n + j] * x[j];
            s += t;
            sa += t.abs();
        }
        y[i] = s;
        yabs[i] = sa;
    }
    (y, yabs)
}

/// Componentwise `|a - b| ≤ 1e-9·(scale + 1)` comparison; returns the
/// worst relative violation if any component fails. NaN anywhere (error or
/// tolerance) is a violation — `!(err <= tol)` rather than `err > tol`, so
/// a NaN-corrupted kernel output cannot slip through the randomized check.
fn compare(a: &[f64], b: &[f64], scale: &[f64], what: &'static str) -> Result<(), KernelError> {
    let mut worst: Option<(f64, f64)> = None;
    for i in 0..a.len() {
        let err = (a[i] - b[i]).abs();
        let tol = 1e-9 * (scale[i] + 1.0);
        if err.is_nan() || tol.is_nan() || err > tol {
            let supersedes = match worst {
                Option::None => true,
                // A NaN ratio also supersedes, so the NaN violation is the
                // one reported.
                Some((we, wt)) => {
                    let ratio = err / tol;
                    ratio.is_nan() || ratio > we / wt
                }
            };
            if supersedes {
                worst = Some((err, tol));
            }
        }
    }
    if let Some((max_error, tolerance)) = worst {
        return Err(KernelError::VerificationFailed {
            what,
            max_error,
            tolerance,
        });
    }
    Ok(())
}

/// Freivalds' check for `C = A·B` (all row-major `n × n`): per round,
/// compare `A·(B·x)` against `C·x` for a random `±1` vector `x`.
///
/// `rounds` is clamped to at least 1 — `Freivalds { rounds: 0 }` must
/// never degrade into an unannounced `Verify::None`.
///
/// # Errors
///
/// [`KernelError::VerificationFailed`] if any round detects a mismatch.
pub fn freivalds_matmul(
    a: &[f64],
    b: &[f64],
    c: &[f64],
    n: usize,
    seed: u64,
    rounds: u32,
) -> Result<(), KernelError> {
    for round in 0..rounds.max(1) {
        let x = probe_vector(n, seed, round);
        let (bx, bx_abs) = matvec_with_abs(b, &x, n);
        let (abx, abx_abs) = matvec_with_abs(a, &bx, n);
        let (cx, cx_abs) = matvec_with_abs(c, &x, n);
        // The |·|-sums already bound the accumulated magnitudes, and f64
        // rounding contributes only ~n·ε ≈ 1e-13 of them — 1e-9·(sums)
        // keeps orders of magnitude of headroom on both sides. (An extra
        // ×n here would loosen the check to ~element errors of 1e-2 at
        // n = 512, silently passing real corruption.)
        let scale: Vec<f64> = (0..n)
            .map(|i| abx_abs[i] + cx_abs[i] + bx_abs[i])
            .collect();
        compare(&abx, &cx, &scale, "matmul (Freivalds)")?;
    }
    Ok(())
}

/// Freivalds' check for a packed LU factorization: `L·(U·x)` must match
/// `A·x`, with `L` unit-lower and `U` upper, both packed in `lu`.
///
/// `rounds` is clamped to at least 1, as in [`freivalds_matmul`].
///
/// # Errors
///
/// [`KernelError::VerificationFailed`] if any round detects a mismatch.
pub fn freivalds_lu(
    a: &[f64],
    lu: &[f64],
    n: usize,
    seed: u64,
    rounds: u32,
) -> Result<(), KernelError> {
    for round in 0..rounds.max(1) {
        let x = probe_vector(n, seed, round);
        // y = U·x (U[k][j] = lu[k][j] for j ≥ k).
        let mut y = vec![0.0; n];
        let mut yabs = vec![0.0; n];
        for k in 0..n {
            let (mut s, mut sa) = (0.0, 0.0);
            for j in k..n {
                let t = lu[k * n + j] * x[j];
                s += t;
                sa += t.abs();
            }
            y[k] = s;
            yabs[k] = sa;
        }
        // z = L·y (unit diagonal, L[i][k] = lu[i][k] for k < i).
        let mut z = vec![0.0; n];
        let mut zabs = vec![0.0; n];
        for i in 0..n {
            let (mut s, mut sa) = (y[i], yabs[i]);
            for k in 0..i {
                let t = lu[i * n + k] * y[k];
                s += t;
                sa += lu[i * n + k].abs() * yabs[k];
            }
            z[i] = s;
            zabs[i] = sa;
        }
        let (ax, ax_abs) = matvec_with_abs(a, &x, n);
        // As in freivalds_matmul: the |·|-sums are the tolerance scale;
        // no extra ×n, which would mask real corruption at large n.
        let scale: Vec<f64> = (0..n).map(|i| zabs[i] + ax_abs[i]).collect();
        compare(&z, &ax, &scale, "triangularization (Freivalds)")?;
    }
    Ok(())
}

/// Residual check for a triangular solve: `L·x` must reproduce `b`.
/// Deterministic and already `O(n²)` — the cheap-verification mode for
/// [`crate::trisolve::TriSolve`].
///
/// # Errors
///
/// [`KernelError::VerificationFailed`] on a residual above tolerance.
pub fn trisolve_residual(l: &[f64], x: &[f64], b: &[f64], n: usize) -> Result<(), KernelError> {
    let mut lx = vec![0.0; n];
    let mut scale = vec![0.0; n];
    for i in 0..n {
        let (mut s, mut sa) = (0.0, 0.0);
        for j in 0..=i {
            let t = l[i * n + j] * x[j];
            s += t;
            sa += t.abs();
        }
        lx[i] = s;
        // The |·|-sum bounds the backward-stable residual of forward
        // substitution with ~7 orders of headroom at 1e-9.
        scale[i] = sa + b[i].abs();
    }
    compare(&lx, b, &scale, "trisolve (residual)")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use crate::workload;

    #[test]
    fn auto_switches_at_the_reference_cost_knee() {
        assert_eq!(Verify::auto(16), Verify::Full);
        assert_eq!(Verify::auto(64), Verify::Full);
        assert_eq!(Verify::auto(65), Verify::Freivalds { rounds: 2 });
    }

    #[test]
    fn zero_rounds_still_verifies() {
        // Freivalds { rounds: 0 } must not silently become Verify::None.
        let n = 16;
        let a = workload::random_matrix(n, 1);
        let b = workload::random_matrix(n, 2);
        let mut c = reference::matmul(&a, &b, n);
        c[5] += 1.0;
        assert!(freivalds_matmul(&a, &b, &c, n, 3, 0).is_err());
        let good = reference::matmul(&a, &b, n);
        freivalds_matmul(&a, &b, &good, n, 3, 0).unwrap();
    }

    #[test]
    fn nan_outputs_are_rejected() {
        // err > tol is false for NaN; the check must use the inverted
        // comparison so NaN-corrupted results fail verification.
        let n = 16;
        let a = workload::random_matrix(n, 1);
        let b = workload::random_matrix(n, 2);
        let mut c = reference::matmul(&a, &b, n);
        c[7 * n + 7] = f64::NAN;
        assert!(freivalds_matmul(&a, &b, &c, n, 5, 1).is_err());
        let l = workload::random_lower_triangular(n, 3);
        let rhs = workload::random_vector(n, 4);
        let mut x = reference::trisolve(&l, &rhs, n);
        x[0] = f64::NAN;
        assert!(trisolve_residual(&l, &x, &rhs, n).is_err());
    }

    #[test]
    fn freivalds_accepts_a_correct_product() {
        let n = 40;
        let a = workload::random_matrix(n, 1);
        let b = workload::random_matrix(n, 2);
        let c = reference::matmul(&a, &b, n);
        freivalds_matmul(&a, &b, &c, n, 7, 3).unwrap();
    }

    #[test]
    fn freivalds_rejects_a_corrupted_product() {
        let n = 40;
        let a = workload::random_matrix(n, 1);
        let b = workload::random_matrix(n, 2);
        let mut c = reference::matmul(&a, &b, n);
        c[17 * n + 3] += 0.5; // single corrupted element
        for seed in 0..20 {
            let err = freivalds_matmul(&a, &b, &c, n, seed, 2).unwrap_err();
            assert!(matches!(err, KernelError::VerificationFailed { .. }));
        }
    }

    #[test]
    fn freivalds_detects_small_corruption_at_large_n() {
        // Tolerance-sensitivity pin: a single element off by 1e-3 at a
        // sweep-realistic size must be caught (an over-scaled tolerance
        // once let 3e-2 corruption through at n = 512).
        let n = 128;
        let a = workload::random_matrix(n, 21);
        let b = workload::random_matrix(n, 22);
        let mut c = reference::matmul(&a, &b, n);
        c[100 * n + 37] += 1e-3;
        for seed in 0..10 {
            assert!(
                freivalds_matmul(&a, &b, &c, n, seed, 2).is_err(),
                "seed {seed} missed the corruption"
            );
        }
        // And the clean product still passes with the tighter tolerance.
        let good = reference::matmul(&a, &b, n);
        for seed in 0..10 {
            freivalds_matmul(&a, &b, &good, n, seed, 2).unwrap();
        }
    }

    #[test]
    fn freivalds_rejects_a_dropped_panel() {
        // The realistic failure: a blocking bug loses a whole k-panel.
        let n = 32;
        let a = workload::random_matrix(n, 3);
        let b = workload::random_matrix(n, 4);
        let mut a_cut = a.clone();
        for i in 0..n {
            for k in 24..n {
                a_cut[i * n + k] = 0.0;
            }
        }
        let c = reference::matmul(&a_cut, &b, n);
        assert!(freivalds_matmul(&a, &b, &c, n, 11, 1).is_err());
    }

    #[test]
    fn freivalds_lu_accepts_and_rejects() {
        let n = 24;
        let a = workload::random_diagonally_dominant(n, 5);
        let lu = reference::lu_factor(&a, n);
        freivalds_lu(&a, &lu, n, 9, 3).unwrap();
        let mut bad = lu.clone();
        bad[5 * n + 2] += 1.0;
        assert!(freivalds_lu(&a, &bad, n, 9, 2).is_err());
    }

    #[test]
    fn trisolve_residual_accepts_and_rejects() {
        let n = 24;
        let l = workload::random_lower_triangular(n, 6);
        let b = workload::random_vector(n, 7);
        let x = reference::trisolve(&l, &b, n);
        trisolve_residual(&l, &x, &b, n).unwrap();
        let mut bad = x.clone();
        bad[3] += 1e-3;
        assert!(trisolve_residual(&l, &bad, &b, n).is_err());
    }

    #[test]
    fn probe_vectors_are_deterministic_and_round_distinct() {
        let a = probe_vector(64, 42, 0);
        let b = probe_vector(64, 42, 0);
        let c = probe_vector(64, 42, 1);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|&v| v == 1.0 || v == -1.0));
    }
}
