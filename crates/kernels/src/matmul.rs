//! Blocked matrix multiplication (paper §3.1).
//!
//! The paper's decomposition: the `N × N` product is computed block by
//! block; each `b × b` block of `C` is accumulated in local memory while
//! `b × b` tiles of `A` and `B` stream through. With `3b² ≤ M` the working
//! set fits, giving
//!
//! ```text
//! C_comp = 2N³            (one multiply + one add per inner step)
//! C_io   ≈ 2N³/b + N²     (A and B re-streamed once per block row/column)
//! r(M)   = Θ(√M)
//! ```
//!
//! Hong & Kung (1981) showed this is the best possible up to a constant, so
//! `M_new = α²·M_old` is tight — this kernel is the paper's flagship example.
//!
//! The module also exports an **address-trace** generator for the naive
//! (unblocked) triple loop, used by the E13 ablation to show that an LRU
//! cache of the same capacity, fed the naive trace, does *not* achieve the
//! `√M` intensity — the decomposition scheme, not the memory itself, earns
//! the balance.

use balance_core::{CostProfile, IntensityModel, Words};
use balance_machine::{ExternalStore, Pe};

use crate::error::KernelError;
use crate::matrix::{load_block, store_block, MatrixHandle};
use crate::reference;
use crate::traits::{Kernel, KernelRun};
use crate::workload;

/// Blocked out-of-core matrix multiplication.
#[derive(Debug, Clone, Copy, Default)]
pub struct MatMul;

/// The largest tile side `b` with `3b² ≤ m` (at least 1).
#[must_use]
pub fn tile_side(m: usize) -> usize {
    (((m / 3) as f64).sqrt().floor() as usize).max(1)
}

impl Kernel for MatMul {
    fn name(&self) -> &'static str {
        "matmul"
    }

    fn description(&self) -> &'static str {
        "N×N matrix multiplication, b×b blocks with 3b² ≤ M (paper §3.1)"
    }

    fn intensity_model(&self) -> IntensityModel {
        // r(M) ≈ 2N³ / (2N³/b) = b = √(M/3): coefficient 1/√3.
        IntensityModel::sqrt_m(1.0 / 3.0f64.sqrt())
    }

    fn analytic_cost(&self, n: usize, m: usize) -> CostProfile {
        let b = tile_side(m).min(n.max(1));
        let nblocks = n.div_ceil(b) as u64;
        let n3 = (n as u64).pow(3);
        let comp = 2 * n3;
        // Per (i,j) block: stream A-row-panel and B-col-panel (2·n·b words),
        // write C block (b²). nblocks² such blocks.
        let io = nblocks * nblocks * (2 * (n as u64) * (b as u64) + (b * b) as u64);
        CostProfile::new(comp, io)
    }

    fn min_memory(&self, _n: usize) -> usize {
        3 // b = 1 needs 3 words
    }

    fn run(&self, n: usize, m: usize, seed: u64) -> Result<KernelRun, KernelError> {
        if n == 0 {
            return Err(KernelError::BadParameters {
                reason: "matrix size must be positive".into(),
            });
        }
        if m < self.min_memory(n) {
            return Err(KernelError::MemoryTooSmall {
                have: m,
                need: self.min_memory(n),
            });
        }
        let b = tile_side(m).min(n);

        // Build inputs in the outside world.
        let mut store = ExternalStore::new();
        let a_data = workload::random_matrix(n, seed);
        let b_data = workload::random_matrix(n, seed ^ 0x9e37_79b9);
        let a = MatrixHandle::new(store.alloc_from(&a_data), n, n);
        let bm = MatrixHandle::new(store.alloc_from(&b_data), n, n);
        let c = MatrixHandle::new(store.alloc(n * n), n, n);

        let mut pe = Pe::new(Words::new(m as u64));
        let buf_a = pe.alloc(b * b)?;
        let buf_b = pe.alloc(b * b)?;
        let buf_c = pe.alloc(b * b)?;

        for i0 in (0..n).step_by(b) {
            let ib = b.min(n - i0);
            for j0 in (0..n).step_by(b) {
                let jb = b.min(n - j0);
                // Zero the accumulator tile.
                pe.buf_mut(buf_c)?[..ib * jb].fill(0.0);
                for k0 in (0..n).step_by(b) {
                    let kb = b.min(n - k0);
                    load_block(&mut pe, &store, &a, i0, k0, ib, kb, buf_a)?;
                    load_block(&mut pe, &store, &bm, k0, j0, kb, jb, buf_b)?;
                    // C_tile += A_tile · B_tile (2 ops per multiply-add).
                    pe.update(buf_c, &[buf_a, buf_b], |ct, srcs| {
                        let (at, bt) = (srcs[0], srcs[1]);
                        for i in 0..ib {
                            for k in 0..kb {
                                let aik = at[i * kb + k];
                                for j in 0..jb {
                                    ct[i * jb + j] += aik * bt[k * jb + j];
                                }
                            }
                        }
                    })?;
                    pe.count_ops(2 * (ib * jb * kb) as u64);
                }
                store_block(&mut pe, &mut store, &c, i0, j0, ib, jb, buf_c)?;
            }
        }

        // Verify against the naive reference.
        let want = reference::matmul(&a_data, &b_data, n);
        let got = c.snapshot(&store);
        let err = reference::max_abs_diff(&want, &got);
        let tol = 1e-9 * (n as f64);
        if err > tol {
            return Err(KernelError::VerificationFailed {
                what: "matmul",
                max_error: err,
                tolerance: tol,
            });
        }

        Ok(KernelRun {
            n,
            m,
            execution: pe.execution(),
        })
    }
}

/// Emits the word-address trace of the *naive* triple-loop `C = A·B`
/// (row-major, `ijk` order), for the LRU ablation (E13).
///
/// Addresses: `A` at `[0, n²)`, `B` at `[n², 2n²)`, `C` at `[2n², 3n²)`.
/// Each inner iteration touches `C[i][j]`, `A[i][k]`, `B[k][j]`.
#[must_use]
pub fn naive_address_trace(n: usize) -> Vec<u64> {
    let n2 = (n * n) as u64;
    let mut trace = Vec::with_capacity(3 * n * n * n);
    for i in 0..n as u64 {
        for j in 0..n as u64 {
            for k in 0..n as u64 {
                trace.push(i * n as u64 + k); // A[i][k]
                trace.push(n2 + k * n as u64 + j); // B[k][j]
                trace.push(2 * n2 + i * n as u64 + j); // C[i][j]
            }
        }
    }
    trace
}

/// Emits the word-address trace of the *blocked* algorithm with tile side
/// `b` (same address map as [`naive_address_trace`]).
#[must_use]
pub fn blocked_address_trace(n: usize, b: usize) -> Vec<u64> {
    let n2 = (n * n) as u64;
    let mut trace = Vec::new();
    for i0 in (0..n).step_by(b) {
        let ib = b.min(n - i0);
        for j0 in (0..n).step_by(b) {
            let jb = b.min(n - j0);
            for k0 in (0..n).step_by(b) {
                let kb = b.min(n - k0);
                for i in i0..i0 + ib {
                    for k in k0..k0 + kb {
                        for j in j0..j0 + jb {
                            trace.push((i * n + k) as u64);
                            trace.push(n2 + (k * n + j) as u64);
                            trace.push(2 * n2 + (i * n + j) as u64);
                        }
                    }
                }
            }
        }
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_side_respects_capacity() {
        assert_eq!(tile_side(3), 1);
        assert_eq!(tile_side(12), 2);
        assert_eq!(tile_side(27), 3);
        assert_eq!(tile_side(48), 4);
        assert_eq!(tile_side(2), 1); // floor, but at least 1
        for m in [3usize, 10, 100, 1000, 4096] {
            let b = tile_side(m);
            assert!(3 * b * b <= m || b == 1, "m={m}, b={b}");
        }
    }

    #[test]
    fn produces_correct_product() {
        // run() verifies internally; reaching Ok proves correctness.
        let run = MatMul.run(24, 100, 1).unwrap();
        assert_eq!(run.n, 24);
        assert!(run.execution.cost.comp_ops() > 0);
    }

    #[test]
    fn comp_ops_are_exactly_2n3() {
        for (n, m) in [(8, 27), (12, 100), (16, 768)] {
            let run = MatMul.run(n, m, 2).unwrap();
            assert_eq!(run.execution.cost.comp_ops(), 2 * (n as u64).pow(3));
        }
    }

    #[test]
    fn io_matches_analytic_model_when_blocks_divide() {
        // n divisible by b: analytic formula should be nearly exact.
        let (n, m) = (16, 12); // b = 2
        let run = MatMul.run(n, m, 3).unwrap();
        let analytic = MatMul.analytic_cost(n, m);
        let measured = run.execution.cost.io_words() as f64;
        let predicted = analytic.io_words() as f64;
        assert!(
            (measured - predicted).abs() / predicted < 0.01,
            "measured {measured}, predicted {predicted}"
        );
    }

    #[test]
    fn intensity_grows_like_sqrt_m() {
        let n = 48;
        let r_small = MatMul.run(n, 48, 4).unwrap().intensity(); // b = 4
        let r_large = MatMul.run(n, 768, 4).unwrap().intensity(); // b = 16
                                                                  // 4x the tile side should give ~4x the intensity (N >> b regime).
        let ratio = r_large / r_small;
        assert!(
            (3.0..5.0).contains(&ratio),
            "intensity ratio {ratio}, r_small {r_small}, r_large {r_large}"
        );
    }

    #[test]
    fn peak_memory_stays_within_m() {
        let run = MatMul.run(20, 300, 5).unwrap();
        assert!(run.execution.peak_memory.get() <= 300);
    }

    #[test]
    fn degenerate_parameters_rejected() {
        assert!(matches!(
            MatMul.run(0, 100, 0),
            Err(KernelError::BadParameters { .. })
        ));
        assert!(matches!(
            MatMul.run(8, 2, 0),
            Err(KernelError::MemoryTooSmall { .. })
        ));
    }

    #[test]
    fn tiny_memory_still_works() {
        // b = 1: fully streamed, worst-case I/O, still correct.
        let run = MatMul.run(6, 3, 6).unwrap();
        assert_eq!(run.execution.cost.comp_ops(), 2 * 6u64.pow(3));
        // I/O should be ~2n³: every operand fetched per scalar multiply.
        assert!(run.execution.cost.io_words() >= 2 * 6u64.pow(3));
    }

    #[test]
    fn odd_sizes_with_edge_tiles() {
        // n = 17 with b = 4 exercises ragged edge blocks.
        let run = MatMul.run(17, 48, 7).unwrap();
        assert_eq!(run.execution.cost.comp_ops(), 2 * 17u64.pow(3));
    }

    #[test]
    fn naive_trace_has_expected_length_and_range() {
        let n = 4;
        let trace = naive_address_trace(n);
        assert_eq!(trace.len(), 3 * n * n * n);
        assert!(trace.iter().all(|&a| a < 3 * (n * n) as u64));
    }

    #[test]
    fn blocked_trace_touches_same_addresses() {
        let n = 6;
        let mut naive: Vec<u64> = naive_address_trace(n);
        let mut blocked: Vec<u64> = blocked_address_trace(n, 2);
        naive.sort_unstable();
        blocked.sort_unstable();
        // Same multiset of accesses, different order.
        assert_eq!(naive, blocked);
    }
}
