//! Blocked matrix multiplication (paper §3.1).
//!
//! The paper's decomposition: the `N × N` product is computed block by
//! block; each `b × b` block of `C` is accumulated in local memory while
//! `b × b` tiles of `A` and `B` stream through. With `3b² ≤ M` the working
//! set fits, giving
//!
//! ```text
//! C_comp = 2N³            (one multiply + one add per inner step)
//! C_io   ≈ 2N³/b + N²     (A and B re-streamed once per block row/column)
//! r(M)   = Θ(√M)
//! ```
//!
//! Hong & Kung (1981) showed this is the best possible up to a constant, so
//! `M_new = α²·M_old` is tight — this kernel is the paper's flagship example.
//!
//! The module also exports **streaming access-trace** generators
//! ([`NaiveTrace`], [`BlockedTrace`]: lazy `Iterator<Item = Access> +
//! ExactSizeIterator`, O(1) memory for the `3n³`-access traces), used by
//! the E13 ablation to show that an LRU cache of the same capacity, fed
//! the naive trace, does *not* achieve the `√M` intensity — the
//! decomposition scheme, not the memory itself, earns the balance. Each
//! `C[i][j]` accumulation is tagged a write (read-modify-write convention);
//! the `A`/`B` streams are reads.
//!
//! # Analytic reuse-distance histogram of the naive trace
//!
//! The paper's §3 closed forms price the *blocked* algorithm; the same
//! affine structure makes the naive trace's full LRU miss curve derivable
//! too, which is what [`Kernel::analytic_profile`] returns (the
//! `Engine::Analytic` tier — see [`crate::sweep`]). The naive trace emits,
//! for `i, j, k` in row-major loop order, the triple
//! `A[i][k], B[k][j], C[i][j]`. Count, for each address, the number of
//! *distinct* addresses touched between consecutive uses (inclusive of the
//! address itself) — the Mattson stack distance `d`; the access hits an LRU
//! of capacity `M` iff `d ≤ M`. Three address families, three shapes:
//!
//! * **`C[i][j]`** recurs every `k` step. Window: `C[i][j]`, then
//!   `A[i][k+1], B[k+1][j]` — `d = 3`, for `n²(n-1)` accesses. This is the
//!   reuse that makes *any* memory (`M ≥ 3`) beat `M = 1`.
//! * **`A[i][k]`** recurs every `j` step. Window: the rest of its own
//!   triple, the `n-1-k` triples finishing column `j`, and the `k` triples
//!   opening column `j+1` — `n-1` other `A`-row entries, all `n` `B`
//!   entries of the two columns, `C[i][j]`, and (only when `k ≥ 1`)
//!   `C[i][j+1]`: `d = 2n+2`, thinning to `2n+1` at `k = 0` where
//!   `C[i][j+1]` has not yet been touched. Counts: `n(n-1)` at `2n+1`,
//!   `n(n-1)²` at `2n+2`.
//! * **`B[k][j]`** recurs once per `i` step — the long-range family. The
//!   window runs from `(i, j, k)` to `(i+1, j, k)`: every other `B` entry
//!   appears in it (`n² - 1`), plus `A`-row `i` (`a₀ = n`, clipped to
//!   `n-1-k` when `j = n-1` leaves no later column), `A`-row `i+1`
//!   (`a₁ = n`, clipped to `k+1` when `j = 0` gives no earlier column),
//!   `n` `C` entries split across rows `i`/`i+1`, and `C[i+1][j]` only
//!   when `k ≥ 1`: `d = n² + a₀ + a₁ + n + [k ≥ 1]`. Interior `(j, k)`
//!   collapse to two giant classes at `n²+3n` and `n²+3n+1`; the
//!   `j ∈ {0, n-1}` loop edges contribute `O(n)` thin classes — `~2n+6`
//!   pieces in total, a few hundred bytes at any `n`, versus the
//!   `3n³`-address replay.
//!
//! The derivation is pinned bit-exact against the replayed engine at every
//! capacity by the registry-wide property tests (`analytic_profiles_*`).

use balance_core::{Access, CostProfile, HierarchySpec, IntensityModel};
use balance_machine::{AnalyticProfile, ExternalStore, Pe};

use crate::error::KernelError;
use crate::matrix::{load_block, store_block, MatrixHandle};
use crate::reference;
use crate::traits::{Kernel, KernelRun};
use crate::verify::{self, Verify};
use crate::workload;

/// Blocked out-of-core matrix multiplication.
#[derive(Debug, Clone, Copy, Default)]
pub struct MatMul;

/// The largest tile side `b` with `3b² ≤ m` (at least 1).
///
/// Integer `isqrt`, not `f64::sqrt`: above 2⁵³ the float rounds, and a
/// rounded-up `b` would break the `3b² ≤ m` capacity contract.
#[must_use]
pub fn tile_side(m: usize) -> usize {
    (m / 3).isqrt().max(1)
}

impl Kernel for MatMul {
    fn name(&self) -> &'static str {
        "matmul"
    }

    fn access_trace(&self, n: usize) -> Option<crate::trace::AccessTrace> {
        (n > 0).then(|| crate::trace::matmul(n))
    }

    /// The closed-form histogram derived in the module docs: three address
    /// families (`C` at distance 3, `A` at `2n+1`/`2n+2`, `B` in `~2n+2`
    /// classes around `n²+3n`).
    fn analytic_profile(&self, n: usize) -> Option<AnalyticProfile> {
        if n == 0 {
            return None;
        }
        let n64 = n as u64;
        let nn = n64 * n64;
        let t = n64 - 1; // recurrences per address family index
        let mut p = AnalyticProfile::new();
        p.record_compulsory(3 * nn);
        // C[i][j]: hit again by every k step.
        p.record_class(3, nn * t);
        // A[i][k]: hit again by every j step; C[i][j+1] absent at k = 0.
        p.record_class(2 * n64 + 1, n64 * t);
        p.record_class(2 * n64 + 2, n64 * t * t);
        // B[k][j]: hit again by every i step; d = n² + a₀ + a₁ + n + [k≥1]
        // with a₀ = n (clipped to n-1-k at j = n-1) and a₁ = n (clipped to
        // k+1 at j = 0). Each (j, k) pair recurs n-1 times.
        //
        // j = 0: a₁ = k+1.
        p.record_class(nn + 2 * n64 + 1, t);
        for k in 1..n64 {
            p.record_class(nn + 2 * n64 + k + 2, t);
        }
        if n64 >= 2 {
            // Interior 1 ≤ j ≤ n-2: both rows unclipped.
            p.record_class(nn + 3 * n64, (n64 - 2) * t);
            p.record_class(nn + 3 * n64 + 1, (n64 - 2) * t * t);
            // j = n-1: a₀ = n-1-k.
            p.record_class(nn + 3 * n64 - 1, t);
            for k in 1..n64 {
                p.record_class(nn + 3 * n64 - k, t);
            }
        }
        Some(p)
    }

    fn description(&self) -> &'static str {
        "N×N matrix multiplication, b×b blocks with 3b² ≤ M (paper §3.1)"
    }

    fn intensity_model(&self) -> IntensityModel {
        // r(M) ≈ 2N³ / (2N³/b) = b = √(M/3): coefficient 1/√3.
        IntensityModel::sqrt_m(1.0 / 3.0f64.sqrt())
    }

    fn analytic_cost(&self, n: usize, m: usize) -> CostProfile {
        let b = tile_side(m).min(n.max(1));
        let nblocks = n.div_ceil(b) as u64;
        let n3 = (n as u64).pow(3);
        let comp = 2 * n3;
        // Per (i,j) block: stream A-row-panel and B-col-panel (2·n·b words),
        // write C block (b²). nblocks² such blocks.
        let io = nblocks * nblocks * (2 * (n as u64) * (b as u64) + (b * b) as u64);
        CostProfile::new(comp, io)
    }

    fn min_memory(&self, _n: usize) -> usize {
        3 // b = 1 needs 3 words
    }

    fn run_on(
        &self,
        n: usize,
        machine: &HierarchySpec,
        seed: u64,
        verify: Verify,
    ) -> Result<KernelRun, KernelError> {
        let m = machine.local_capacity_words();
        if n == 0 {
            return Err(KernelError::BadParameters {
                reason: "matrix size must be positive".into(),
            });
        }
        if m < self.min_memory(n) {
            return Err(KernelError::MemoryTooSmall {
                have: m,
                need: self.min_memory(n),
            });
        }
        let b = tile_side(m).min(n);

        // Build inputs in the outside world.
        let mut store = ExternalStore::new();
        let a_data = workload::random_matrix(n, seed);
        let b_data = workload::random_matrix(n, seed ^ 0x9e37_79b9);
        let a = MatrixHandle::new(store.alloc_from(&a_data), n, n);
        let bm = MatrixHandle::new(store.alloc_from(&b_data), n, n);
        let c = MatrixHandle::new(store.alloc(n * n), n, n);

        let mut pe = Pe::for_hierarchy(machine);
        let buf_a = pe.alloc(b * b)?;
        let buf_b = pe.alloc(b * b)?;
        let buf_c = pe.alloc(b * b)?;

        for i0 in (0..n).step_by(b) {
            let ib = b.min(n - i0);
            for j0 in (0..n).step_by(b) {
                let jb = b.min(n - j0);
                // Zero the accumulator tile.
                pe.buf_mut(buf_c)?[..ib * jb].fill(0.0);
                for k0 in (0..n).step_by(b) {
                    let kb = b.min(n - k0);
                    load_block(&mut pe, &store, &a, i0, k0, ib, kb, buf_a)?;
                    load_block(&mut pe, &store, &bm, k0, j0, kb, jb, buf_b)?;
                    // C_tile += A_tile · B_tile (2 ops per multiply-add).
                    pe.update(buf_c, &[buf_a, buf_b], |ct, srcs| {
                        let (at, bt) = (srcs[0], srcs[1]);
                        for i in 0..ib {
                            for k in 0..kb {
                                let aik = at[i * kb + k];
                                for j in 0..jb {
                                    ct[i * jb + j] += aik * bt[k * jb + j];
                                }
                            }
                        }
                    })?;
                    pe.count_ops(2 * (ib * jb * kb) as u64);
                }
                store_block(&mut pe, &mut store, &c, i0, j0, ib, jb, buf_c)?;
            }
        }

        match verify {
            Verify::Full => {
                // Recompute the naive reference and compare elementwise.
                let want = reference::matmul(&a_data, &b_data, n);
                let got = c.snapshot(&store);
                let err = reference::max_abs_diff(&want, &got);
                let tol = 1e-9 * (n as f64);
                if err > tol {
                    return Err(KernelError::VerificationFailed {
                        what: "matmul",
                        max_error: err,
                        tolerance: tol,
                    });
                }
            }
            Verify::Freivalds { rounds } => {
                let got = c.snapshot(&store);
                verify::freivalds_matmul(&a_data, &b_data, &got, n, seed, rounds)?;
            }
            Verify::None => {}
        }

        Ok(KernelRun {
            n,
            m,
            execution: pe.execution(),
        })
    }
}

/// Streaming tagged access trace of the *naive* triple-loop `C = A·B`
/// (row-major, `ijk` order), for the LRU ablation (E13).
///
/// Addresses: `A` at `[0, n²)`, `B` at `[n², 2n²)`, `C` at `[2n², 3n²)`.
/// Each inner iteration reads `A[i][k]`, `B[k][j]` and accumulates into
/// `C[i][j]` (a write, by the read-modify-write convention).
///
/// The trace is `3n³` accesses long — ~3 GB materialized at `n = 512` —
/// so it is generated lazily: the iterator holds a handful of counters and
/// feeds the replay engines in O(1) memory. [`naive_address_trace`] is
/// the thin address-collecting wrapper for small-`n` uses.
#[derive(Debug, Clone)]
pub struct NaiveTrace {
    n: u64,
    n2: u64,
    i: u64,
    j: u64,
    k: u64,
    phase: u8,
    remaining: u64,
}

impl NaiveTrace {
    /// The trace for an `n × n` product.
    #[must_use]
    pub fn new(n: usize) -> Self {
        let n = n as u64;
        NaiveTrace {
            n,
            n2: n * n,
            i: 0,
            j: 0,
            k: 0,
            phase: 0,
            remaining: 3 * n * n * n,
        }
    }
}

impl Iterator for NaiveTrace {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let access = match self.phase {
            0 => Access::read(self.i * self.n + self.k), // A[i][k]
            1 => Access::read(self.n2 + self.k * self.n + self.j), // B[k][j]
            _ => Access::write(2 * self.n2 + self.i * self.n + self.j), // C[i][j] +=
        };
        self.phase += 1;
        if self.phase == 3 {
            self.phase = 0;
            self.k += 1;
            if self.k == self.n {
                self.k = 0;
                self.j += 1;
                if self.j == self.n {
                    self.j = 0;
                    self.i += 1;
                }
            }
        }
        Some(access)
    }

    /// O(1) positional skip: the element at absolute position
    /// `p = ((i·n + j)·n + k)·3 + phase` is a closed-form decode of `p`,
    /// so `skip(start)` over this trace (the segmented parallel engine's
    /// per-range slicing) costs one division chain instead of a scan —
    /// `Iterator::skip` defers to `nth`, and `Box<dyn Iterator>` forwards
    /// it.
    fn nth(&mut self, skip: usize) -> Option<Access> {
        let skip = u64::try_from(skip).unwrap_or(u64::MAX);
        if skip >= self.remaining {
            self.remaining = 0;
            return None;
        }
        let total = 3 * self.n2 * self.n;
        let p = total - self.remaining + skip;
        self.phase = (p % 3) as u8;
        let q = p / 3;
        self.k = q % self.n;
        let q = q / self.n;
        self.j = q % self.n;
        self.i = q / self.n;
        self.remaining = total - p;
        self.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let r = self.remaining as usize;
        (r, Some(r))
    }
}

impl ExactSizeIterator for NaiveTrace {}

/// Streaming word-address trace of the *blocked* algorithm with tile side
/// `b` (same address map and O(1) memory as [`NaiveTrace`]);
/// [`blocked_address_trace`] is the materializing wrapper.
#[derive(Debug, Clone)]
pub struct BlockedTrace {
    n: usize,
    b: usize,
    n2: u64,
    // Block origins and in-block coordinates of the next emission.
    i0: usize,
    j0: usize,
    k0: usize,
    i: usize,
    j: usize,
    k: usize,
    phase: u8,
    remaining: u64,
}

impl BlockedTrace {
    /// The trace for an `n × n` product in `b × b` tiles.
    ///
    /// # Panics
    ///
    /// Panics if `b` is zero.
    #[must_use]
    pub fn new(n: usize, b: usize) -> Self {
        assert!(b > 0, "tile side must be positive");
        let n64 = n as u64;
        BlockedTrace {
            n,
            b,
            n2: n64 * n64,
            i0: 0,
            j0: 0,
            k0: 0,
            i: 0,
            j: 0,
            k: 0,
            phase: 0,
            remaining: 3 * n64 * n64 * n64,
        }
    }

    /// Advances the loop nest to the next `(i, k, j)` triple, innermost
    /// (j) first, carrying into k, i, then the k0/j0/i0 block origins.
    fn advance(&mut self) {
        self.j += 1;
        if self.j < (self.j0 + self.b).min(self.n) {
            return;
        }
        self.j = self.j0;
        self.k += 1;
        if self.k < (self.k0 + self.b).min(self.n) {
            return;
        }
        self.k = self.k0;
        self.i += 1;
        if self.i < (self.i0 + self.b).min(self.n) {
            return;
        }
        self.i = self.i0;
        self.k0 += self.b;
        if self.k0 < self.n {
            self.k = self.k0;
            return;
        }
        self.k0 = 0;
        self.k = 0;
        self.j0 += self.b;
        if self.j0 < self.n {
            self.j = self.j0;
            return;
        }
        self.j0 = 0;
        self.j = 0;
        self.i0 += self.b;
        self.i = self.i0;
    }
}

impl Iterator for BlockedTrace {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let n = self.n as u64;
        let (i, j, k) = (self.i as u64, self.j as u64, self.k as u64);
        let access = match self.phase {
            0 => Access::read(i * n + k),                   // A[i][k]
            1 => Access::read(self.n2 + k * n + j),         // B[k][j]
            _ => Access::write(2 * self.n2 + i * n + j),    // C[i][j] +=
        };
        self.phase += 1;
        if self.phase == 3 {
            self.phase = 0;
            self.advance();
        }
        Some(access)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let r = self.remaining as usize;
        (r, Some(r))
    }
}

impl ExactSizeIterator for BlockedTrace {}

/// Materialized addresses of [`NaiveTrace`] for small `n` (tests, plots).
#[must_use]
pub fn naive_address_trace(n: usize) -> Vec<u64> {
    NaiveTrace::new(n).map(|a| a.addr).collect()
}

/// Materialized addresses of [`BlockedTrace`] for small `n` (tests, plots).
#[must_use]
pub fn blocked_address_trace(n: usize, b: usize) -> Vec<u64> {
    BlockedTrace::new(n, b).map(|a| a.addr).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_side_respects_capacity() {
        assert_eq!(tile_side(3), 1);
        assert_eq!(tile_side(12), 2);
        assert_eq!(tile_side(27), 3);
        assert_eq!(tile_side(48), 4);
        assert_eq!(tile_side(2), 1); // floor, but at least 1
        for m in [3usize, 10, 100, 1000, 4096] {
            let b = tile_side(m);
            assert!(3 * b * b <= m || b == 1, "m={m}, b={b}");
        }
    }

    #[test]
    fn produces_correct_product() {
        // run() verifies internally; reaching Ok proves correctness.
        let run = MatMul.run(24, 100, 1).unwrap();
        assert_eq!(run.n, 24);
        assert!(run.execution.cost.comp_ops() > 0);
    }

    #[test]
    fn comp_ops_are_exactly_2n3() {
        for (n, m) in [(8, 27), (12, 100), (16, 768)] {
            let run = MatMul.run(n, m, 2).unwrap();
            assert_eq!(run.execution.cost.comp_ops(), 2 * (n as u64).pow(3));
        }
    }

    #[test]
    fn io_matches_analytic_model_when_blocks_divide() {
        // n divisible by b: analytic formula should be nearly exact.
        let (n, m) = (16, 12); // b = 2
        let run = MatMul.run(n, m, 3).unwrap();
        let analytic = MatMul.analytic_cost(n, m);
        let measured = run.execution.cost.io_words() as f64;
        let predicted = analytic.io_words() as f64;
        assert!(
            (measured - predicted).abs() / predicted < 0.01,
            "measured {measured}, predicted {predicted}"
        );
    }

    #[test]
    fn intensity_grows_like_sqrt_m() {
        let n = 48;
        let r_small = MatMul.run(n, 48, 4).unwrap().intensity(); // b = 4
        let r_large = MatMul.run(n, 768, 4).unwrap().intensity(); // b = 16
                                                                  // 4x the tile side should give ~4x the intensity (N >> b regime).
        let ratio = r_large / r_small;
        assert!(
            (3.0..5.0).contains(&ratio),
            "intensity ratio {ratio}, r_small {r_small}, r_large {r_large}"
        );
    }

    #[test]
    fn peak_memory_stays_within_m() {
        let run = MatMul.run(20, 300, 5).unwrap();
        assert!(run.execution.peak_memory.get() <= 300);
    }

    #[test]
    fn degenerate_parameters_rejected() {
        assert!(matches!(
            MatMul.run(0, 100, 0),
            Err(KernelError::BadParameters { .. })
        ));
        assert!(matches!(
            MatMul.run(8, 2, 0),
            Err(KernelError::MemoryTooSmall { .. })
        ));
    }

    #[test]
    fn tiny_memory_still_works() {
        // b = 1: fully streamed, worst-case I/O, still correct.
        let run = MatMul.run(6, 3, 6).unwrap();
        assert_eq!(run.execution.cost.comp_ops(), 2 * 6u64.pow(3));
        // I/O should be ~2n³: every operand fetched per scalar multiply.
        assert!(run.execution.cost.io_words() >= 2 * 6u64.pow(3));
    }

    #[test]
    fn odd_sizes_with_edge_tiles() {
        // n = 17 with b = 4 exercises ragged edge blocks.
        let run = MatMul.run(17, 48, 7).unwrap();
        assert_eq!(run.execution.cost.comp_ops(), 2 * 17u64.pow(3));
    }

    #[test]
    fn tile_side_is_exact_beyond_f64_precision() {
        // Above 2⁵³, `(m/3) as f64` rounds; the old sqrt-based tile_side
        // could round b up past the 3b² ≤ m contract. isqrt cannot.
        for b in [94_906_265usize, 94_906_266, 1 << 27, (1 << 27) + 1] {
            let m = 3 * b * b;
            assert_eq!(tile_side(m), b, "exact capacity for b = {b}");
            assert_eq!(tile_side(m - 1), b - 1, "one word short of b = {b}");
            assert_eq!(tile_side(m + 1), b);
        }
        // The invariant itself, across adversarial huge capacities.
        for m in [
            usize::MAX,
            usize::MAX - 1,
            (1usize << 53) + 1,
            3 * ((1usize << 53) + 7),
        ] {
            let b = tile_side(m);
            assert!(3 * (b as u128) * (b as u128) <= m as u128, "m = {m}");
            let b1 = b as u128 + 1;
            assert!(3 * b1 * b1 > m as u128, "b not maximal for m = {m}");
        }
    }

    #[test]
    fn streaming_traces_report_exact_lengths() {
        let mut t = NaiveTrace::new(5);
        assert_eq!(t.len(), 3 * 5 * 5 * 5);
        let mut left = t.len();
        while t.next().is_some() {
            left -= 1;
            assert_eq!(t.len(), left);
        }
        let b = BlockedTrace::new(7, 3);
        assert_eq!(b.len(), 3 * 7 * 7 * 7);
        assert_eq!(b.count(), 3 * 7 * 7 * 7);
        assert_eq!(NaiveTrace::new(0).len(), 0);
        assert_eq!(BlockedTrace::new(0, 2).next(), None);
    }

    #[test]
    #[allow(clippy::iter_nth_zero)] // nth(0) is a case under test, not an idiom slip
    fn naive_trace_nth_matches_linear_iteration() {
        let n = 5;
        let full = naive_address_trace(n);
        // skip() defers to the positional nth: every range slice must
        // equal the materialized slice, including empty and out-of-range.
        for start in [0usize, 1, 2, 7, 100, full.len() - 1, full.len(), full.len() + 9] {
            let got: Vec<u64> =
                NaiveTrace::new(n).skip(start).take(11).map(|a| a.addr).collect();
            let want: Vec<u64> = full.iter().skip(start).take(11).copied().collect();
            assert_eq!(got, want, "start = {start}");
        }
        // Direct nth calls, repeated on one iterator.
        let mut t = NaiveTrace::new(n);
        assert_eq!(t.nth(10).map(|a| a.addr), Some(full[10]));
        assert_eq!(t.nth(0).map(|a| a.addr), Some(full[11]));
        assert_eq!(t.nth(5).map(|a| a.addr), Some(full[17]));
        assert_eq!(t.len(), full.len() - 18);
        assert_eq!(NaiveTrace::new(0).nth(3), None);
    }

    #[test]
    fn naive_trace_has_expected_length_and_range() {
        let n = 4;
        let trace = naive_address_trace(n);
        assert_eq!(trace.len(), 3 * n * n * n);
        assert!(trace.iter().all(|&a| a < 3 * (n * n) as u64));
    }

    #[test]
    fn blocked_trace_touches_same_addresses() {
        let n = 6;
        let mut naive: Vec<u64> = naive_address_trace(n);
        let mut blocked: Vec<u64> = blocked_address_trace(n, 2);
        naive.sort_unstable();
        blocked.sort_unstable();
        // Same multiset of accesses, different order.
        assert_eq!(naive, blocked);
    }
}
