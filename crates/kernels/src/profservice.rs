//! The self-healing query path over the crash-safe profile store.
//!
//! `balance_machine::profstore` promises that a corrupted entry is
//! *detected and quarantined*, never served; this module supplies the
//! other half of the robustness contract — **repair**. A
//! [`ProfileService`] answers every lookup from the store when it can,
//! and degrades down a ladder when it cannot:
//!
//! 1. **store hit** — the validated entry is served as-is (O(1) reads,
//!    no replay);
//! 2. **analytic recompute** — for the nine kernels with a closed-form
//!    reuse-distance histogram this is free *and* exact, so a miss or a
//!    quarantined entry costs microseconds to heal;
//! 3. **budgeted stack-distance recompute** — kernels without a closed
//!    form replay their canonical trace through
//!    [`robust_capacity_profile`], whose own budget ladder degrades
//!    exact → sampled rather than hanging (PR 7 semantics);
//!
//! and the repaired artifact is **re-persisted** so the next query is a
//! hit again. Every answer carries its [`ServeSource`] (hit vs repaired,
//! and from what) plus the recompute's `Provenance` when one ran, so a
//! degraded repair is reported, never silent — and exact-only consumers
//! (the `measured_balance_memory` fast path in `balance-parallel`) keep
//! refusing non-exact artifacts through the profile's own exactness bit,
//! exactly as PRs 7/8 gated.

use balance_core::Budget;
use balance_machine::{
    CapacityProfile, FaultPlan, Lookup, ProfileKey, ProfileMeta, ProfilePayload, ProfileStore,
    StackDistance, StoreError,
};

use crate::error::KernelError;
use crate::sweep::{
    engine_spec, robust_capacity_profile, Engine, Provenance, SweepConfig, TrafficModel,
};
use crate::traits::{all_kernels, extension_kernels, Kernel};

/// Address-space bound below which the tagged recompute uses the
/// direct-indexed engine backend (same regime the sweeps use).
const DIRECT_BOUND: u64 = 1 << 26;

/// Every kernel the store precomputes: the eight paper kernels plus the
/// three extensions, in registry order.
#[must_use]
pub fn registry() -> Vec<Box<dyn Kernel>> {
    let mut kernels = all_kernels();
    kernels.extend(extension_kernels());
    kernels
}

/// Looks a kernel up by its canonical `Kernel::name()` (the spelling
/// stored in profile images and manifests).
#[must_use]
pub fn registry_kernel(name: &str) -> Option<Box<dyn Kernel>> {
    registry().into_iter().find(|k| k.name() == name)
}

/// The store identity of one (kernel, problem size, traffic model)
/// curve.
#[must_use]
pub fn key_for(kernel: &str, n: usize, model: TrafficModel) -> ProfileKey {
    ProfileKey {
        kernel: kernel.to_string(),
        n: n as u64,
        line_words: model.line_words,
        writebacks: model.writebacks,
    }
}

/// Where an answer came from — the store-hit vs repaired distinction the
/// issue's robustness contract requires every answer to report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeSource {
    /// Served from a validated store entry; nothing was recomputed.
    Hit,
    /// No entry existed; the profile was computed and persisted.
    RepairedMiss,
    /// The entry existed but failed validation and was quarantined; the
    /// profile was recomputed and re-persisted.
    RepairedQuarantine,
}

impl core::fmt::Display for ServeSource {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ServeSource::Hit => write!(f, "hit"),
            ServeSource::RepairedMiss => write!(f, "repaired(miss)"),
            ServeSource::RepairedQuarantine => write!(f, "repaired(quarantined)"),
        }
    }
}

/// One answered lookup: the profile plus its full provenance story.
#[derive(Debug)]
pub struct Served {
    /// The profile (capacity or dual-ledger traffic).
    pub payload: ProfilePayload,
    /// Hit vs repaired, and what was repaired.
    pub source: ServeSource,
    /// CLI spelling of the engine that produced the artifact (stored
    /// provenance on a hit, the recompute's engine on a repair).
    pub engine: String,
    /// The recompute's provenance when one ran this call (`None` on a
    /// store hit) — carries any budget-forced degradation steps.
    pub provenance: Option<Provenance>,
}

impl Served {
    /// The read/fetch curve, whichever payload kind carries it.
    #[must_use]
    pub fn profile(&self) -> &CapacityProfile {
        self.payload.profile()
    }

    /// Whether the artifact is exact (unsampled) — what exact-only
    /// consumers gate on.
    #[must_use]
    pub fn is_exact(&self) -> bool {
        self.payload.is_exact()
    }

    /// Whether a budget trip degraded this call's recompute below the
    /// engine it asked for.
    #[must_use]
    pub fn degraded(&self) -> bool {
        self.provenance.as_ref().is_some_and(Provenance::degraded)
    }

    /// One-line provenance summary for CLI output, e.g.
    /// `hit [analytic, exact]` or
    /// `repaired(quarantined) [sampled:4, rate 1/16, degraded]`.
    #[must_use]
    pub fn describe(&self) -> String {
        let mut tags = vec![self.engine.clone()];
        if self.is_exact() {
            tags.push("exact".to_string());
        } else {
            tags.push(format!(
                "rate 1/{}",
                1u64 << self.profile().sample_shift()
            ));
        }
        if self.degraded() {
            tags.push("degraded".to_string());
        }
        format!("{} [{}]", self.source, tags.join(", "))
    }
}

/// The self-healing query path: a [`ProfileStore`] plus the recompute
/// ladder that repairs what the store cannot serve. See the module docs.
#[derive(Debug)]
pub struct ProfileService<'a> {
    store: &'a ProfileStore,
    budget: Option<Budget>,
}

impl<'a> ProfileService<'a> {
    /// A service over `store` with an unbounded recompute ladder.
    #[must_use]
    pub fn new(store: &'a ProfileStore) -> ProfileService<'a> {
        ProfileService {
            store,
            budget: None,
        }
    }

    /// The same service with a resource budget on recomputes; a tripped
    /// limit degrades the repair (exact → sampled) instead of hanging,
    /// and the substitution is reported in the answer's provenance.
    #[must_use]
    pub fn with_budget(mut self, budget: Budget) -> ProfileService<'a> {
        self.budget = Some(budget);
        self
    }

    /// The store this service answers from.
    #[must_use]
    pub fn store(&self) -> &ProfileStore {
        self.store
    }

    /// Answers one lookup: store hit, or heal (recompute + re-persist)
    /// on a miss or a quarantined entry.
    ///
    /// # Errors
    ///
    /// [`KernelError`] when the kernel cannot produce a profile at `n`
    /// under the configured budget, or when the store itself fails at
    /// the filesystem level.
    pub fn fetch(
        &self,
        kernel: &dyn Kernel,
        n: usize,
        model: TrafficModel,
    ) -> Result<Served, KernelError> {
        let key = key_for(kernel.name(), n, model);
        match self.store.get(&key).map_err(store_err)? {
            Lookup::Hit { meta, payload } => Ok(Served {
                payload,
                source: ServeSource::Hit,
                engine: meta.engine,
                provenance: None,
            }),
            Lookup::Miss => self.repair(kernel, n, model, ServeSource::RepairedMiss),
            Lookup::Quarantined { .. } => {
                self.repair(kernel, n, model, ServeSource::RepairedQuarantine)
            }
        }
    }

    fn repair(
        &self,
        kernel: &dyn Kernel,
        n: usize,
        model: TrafficModel,
        source: ServeSource,
    ) -> Result<Served, KernelError> {
        let (meta, payload, provenance) = self.recompute(kernel, n, model)?;
        self.store.put(&meta, &payload).map_err(store_err)?;
        Ok(Served {
            payload,
            source,
            engine: meta.engine,
            provenance,
        })
    }

    /// The repair ladder, without touching the store: analytic when the
    /// kernel derives a closed form (free, exact), else a budgeted
    /// stack-distance replay whose own ladder degrades to sampled; the
    /// device-real dual ledger always comes from one exact tagged pass.
    ///
    /// # Errors
    ///
    /// As [`ProfileService::fetch`], minus store I/O.
    pub fn recompute(
        &self,
        kernel: &dyn Kernel,
        n: usize,
        model: TrafficModel,
    ) -> Result<(ProfileMeta, ProfilePayload, Option<Provenance>), KernelError> {
        if model.writebacks {
            let trace = kernel
                .access_trace(n)
                .ok_or_else(|| KernelError::BadParameters {
                    reason: format!(
                        "{} has no canonical access trace at n = {n} (device-real \
                         entries need one)",
                        kernel.name()
                    ),
                })?;
            let bound = trace.addr_bound();
            let traffic = if bound <= DIRECT_BOUND {
                StackDistance::traffic_profile_of_bounded(
                    trace.into_accesses(),
                    model.line_words,
                    bound,
                )
            } else {
                StackDistance::traffic_profile_of(trace.into_accesses(), model.line_words)
            };
            let meta = ProfileMeta {
                kernel: kernel.name().to_string(),
                n: n as u64,
                engine: engine_spec(Engine::StackDist),
                sample_shift: 0,
                line_words: model.line_words,
                writebacks: true,
            };
            return Ok((meta, ProfilePayload::Traffic(traffic), None));
        }
        if model.line_words != 1 {
            return Err(KernelError::BadParameters {
                reason: format!(
                    "the profile store holds word-granular curves and device-real \
                     (write-back) curves; a line-granular read-only model \
                     (line_words = {}, no writebacks) has no stored form",
                    model.line_words
                ),
            });
        }
        let engine = if kernel.analytic_profile(n).is_some() {
            Engine::Analytic
        } else {
            Engine::StackDist
        };
        let cfg = SweepConfig {
            n,
            engine,
            budget: self.budget,
            ..SweepConfig::default()
        };
        let (profile, provenance) = robust_capacity_profile(kernel, &cfg, &FaultPlan::none())?;
        let meta = ProfileMeta {
            kernel: kernel.name().to_string(),
            n: n as u64,
            engine: engine_spec(provenance.used),
            sample_shift: profile.sample_shift(),
            line_words: 1,
            writebacks: false,
        };
        Ok((meta, ProfilePayload::Capacity(profile), Some(provenance)))
    }
}

/// What one [`build_store`] pass did.
#[derive(Debug, Default)]
pub struct BuildOutcome {
    /// Entries computed and published this pass.
    pub built: usize,
    /// Entries already present and valid (the resumable fast path).
    pub skipped: usize,
    /// Grid points that could not be built, with the reason (the build
    /// continues past them).
    pub failed: Vec<(ProfileKey, String)>,
}

/// Precomputes `kernels` × `grid` into the store, resumably: grid points
/// whose entry already validates are skipped, so a killed build re-run
/// completes only the remainder. Faults are threaded into every publish
/// (pass [`FaultPlan::none`] outside harness runs). Per-point failures
/// are recorded, not fatal.
///
/// # Errors
///
/// [`KernelError::Interrupted`] only for store-level filesystem failures
/// while *reading* (publish failures are per-point outcomes).
pub fn build_store(
    store: &ProfileStore,
    kernels: &[Box<dyn Kernel>],
    grid: &[usize],
    model: TrafficModel,
    budget: Option<Budget>,
    faults: &FaultPlan,
) -> Result<BuildOutcome, KernelError> {
    let mut service = ProfileService::new(store);
    if let Some(budget) = budget {
        service = service.with_budget(budget);
    }
    let mut outcome = BuildOutcome::default();
    for kernel in kernels {
        for &n in grid {
            let key = key_for(kernel.name(), n, model);
            if matches!(store.get(&key).map_err(store_err)?, Lookup::Hit { .. }) {
                outcome.skipped += 1;
                continue;
            }
            match service.recompute(kernel.as_ref(), n, model) {
                Ok((meta, payload, _provenance)) => {
                    match store.put_with(&meta, &payload, faults) {
                        Ok(()) => outcome.built += 1,
                        Err(e) => outcome.failed.push((key, e.to_string())),
                    }
                }
                Err(e) => outcome.failed.push((key, e.to_string())),
            }
        }
    }
    Ok(outcome)
}

fn store_err(e: StoreError) -> KernelError {
    KernelError::Interrupted {
        reason: format!("profile store: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::MatMul;
    use crate::fft::Fft;
    use std::path::PathBuf;

    fn tmp_store(tag: &str) -> (PathBuf, ProfileStore) {
        let dir = std::env::temp_dir().join(format!(
            "kb-profservice-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ProfileStore::open(&dir).unwrap();
        (dir, store)
    }

    #[test]
    fn miss_repairs_analytically_and_second_fetch_hits() {
        let (dir, store) = tmp_store("miss");
        let service = ProfileService::new(&store);
        let first = service.fetch(&MatMul, 24, TrafficModel::WORD).unwrap();
        assert_eq!(first.source, ServeSource::RepairedMiss);
        assert_eq!(first.engine, "analytic");
        assert!(first.is_exact() && !first.degraded());
        let second = service.fetch(&MatMul, 24, TrafficModel::WORD).unwrap();
        assert_eq!(second.source, ServeSource::Hit);
        assert!(second.provenance.is_none());
        // Bit-identical to a fresh recompute at every probed capacity.
        let (_, fresh, _) = service.recompute(&MatMul, 24, TrafficModel::WORD).unwrap();
        assert_eq!(second.payload, fresh);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantined_entry_is_healed_and_repersisted() {
        let (dir, store) = tmp_store("heal");
        let service = ProfileService::new(&store);
        // Publish a torn image under matmul's key.
        let (meta, payload, _) = service.recompute(&MatMul, 16, TrafficModel::WORD).unwrap();
        store
            .put_with(
                &meta,
                &payload,
                &FaultPlan::none().with_torn_store_writes(1),
            )
            .unwrap();
        let healed = service.fetch(&MatMul, 16, TrafficModel::WORD).unwrap();
        assert_eq!(healed.source, ServeSource::RepairedQuarantine);
        assert_eq!(healed.payload, payload, "repair must be bit-identical");
        assert_eq!(store.quarantined_files().unwrap().len(), 1);
        assert_eq!(
            service
                .fetch(&MatMul, 16, TrafficModel::WORD)
                .unwrap()
                .source,
            ServeSource::Hit
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn budget_floor_degrades_to_sampled_and_reports_it() {
        let (dir, store) = tmp_store("degrade");
        // fft has no closed form, so the repair replays — and an
        // address budget below the trace length forces the sampled rung.
        let budget = Budget::unlimited().with_max_addresses(64);
        let service = ProfileService::new(&store).with_budget(budget);
        let served = service.fetch(&Fft, 64, TrafficModel::WORD).unwrap();
        assert!(matches!(served.source, ServeSource::RepairedMiss));
        assert!(served.degraded(), "address budget must trip the ladder");
        assert!(!served.is_exact(), "exact-only consumers must refuse this");
        // The degraded artifact is persisted with its rate in the header.
        match store
            .get(&key_for("fft", 64, TrafficModel::WORD))
            .unwrap()
        {
            Lookup::Hit { meta, payload } => {
                assert!(meta.sample_shift > 0);
                assert!(!payload.is_exact());
            }
            other => panic!("expected hit, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn device_model_serves_the_dual_ledger() {
        let (dir, store) = tmp_store("device");
        let service = ProfileService::new(&store);
        let model = TrafficModel::device(8);
        let served = service.fetch(&MatMul, 16, model).unwrap();
        match &served.payload {
            ProfilePayload::Traffic(t) => assert_eq!(t.line_words(), 8),
            other => panic!("expected traffic payload, got {other:?}"),
        }
        assert_eq!(
            service.fetch(&MatMul, 16, model).unwrap().source,
            ServeSource::Hit
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn build_store_is_resumable() {
        let (dir, store) = tmp_store("build");
        let kernels: Vec<Box<dyn Kernel>> = vec![Box::new(MatMul), Box::new(Fft)];
        let grid = [16usize, 32];
        let first = build_store(
            &store,
            &kernels,
            &grid,
            TrafficModel::WORD,
            None,
            &FaultPlan::none(),
        )
        .unwrap();
        assert_eq!(first.built, 4);
        assert_eq!(first.skipped, 0);
        assert!(first.failed.is_empty());
        let second = build_store(
            &store,
            &kernels,
            &grid,
            TrafficModel::WORD,
            None,
            &FaultPlan::none(),
        )
        .unwrap();
        assert_eq!(second.built, 0);
        assert_eq!(second.skipped, 4, "a re-run must skip valid entries");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn registry_covers_all_eleven_kernels_by_name() {
        let names: Vec<&str> = registry().iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), 11);
        for name in ["matmul", "fft", "sort", "grid2d", "convolution"] {
            assert!(registry_kernel(name).is_some(), "{name} missing");
        }
        assert!(registry_kernel("nope").is_none());
    }
}
