//! Streaming matrix–vector multiplication (paper §3.6, I/O-bounded).
//!
//! `y = A·x` performs `2N²` operations but must read all `N²` matrix
//! entries, each used exactly once. No amount of local memory reduces the
//! traffic below `N²` words, so the intensity saturates:
//!
//! ```text
//! r(M) = Θ(1)  (→ 2 ops/word)      ⇒      rebalancing by memory alone is impossible
//! ```
//!
//! This is the paper's first example of a computation where "inputs and
//! intermediate results are not used more than a constant number of times on
//! the average". The blocked implementation below uses whatever memory it
//! gets (larger row blocks amortize re-reads of `x`), and its measured
//! intensity visibly *saturates* at 2 as `M` grows — the signature the
//! rebalancing solver detects as [`GrowthLaw::Impossible`].
//!
//! [`GrowthLaw::Impossible`]: balance_core::GrowthLaw

use balance_core::{CostProfile, HierarchySpec, IntensityModel};
use balance_machine::{AnalyticProfile, ExternalStore, Pe};

use crate::error::KernelError;
use crate::matrix::MatrixHandle;
use crate::reference;
use crate::traits::{Kernel, KernelRun};
use crate::verify::Verify;
use crate::workload;

/// Blocked streaming `y = A·x`. Problem size `n` = matrix dimension.
#[derive(Debug, Clone, Copy, Default)]
pub struct MatVec;

impl Kernel for MatVec {
    fn access_trace(&self, n: usize) -> Option<crate::trace::AccessTrace> {
        (n > 0).then(|| crate::trace::matvec(n))
    }

    fn analytic_profile(&self, n: usize) -> Option<AnalyticProfile> {
        // Row `i` interleaves `[A[i][j], x[j]]` for `j = 0..n`, then writes
        // `y[i]`. Only `x` repeats: between touches of `x[j]` in consecutive
        // rows sit the rest of row `i` (`2(n-1-j)` words plus `y[i]`) and the
        // head of row `i+1` (`2j` words), all distinct — a single reuse class
        // at distance `2n+1`, `n-1` reuses for each of the `n` entries of `x`.
        // Everything else (`A`, `y`) is touched exactly once.
        if n == 0 {
            return None;
        }
        let n64 = n as u64;
        let mut p = AnalyticProfile::new();
        p.record_compulsory(n64 * n64 + 2 * n64);
        p.record_class(2 * n64 + 1, n64 * (n64 - 1));
        Some(p)
    }

    fn name(&self) -> &'static str {
        "matvec"
    }

    fn description(&self) -> &'static str {
        "streaming y = A·x; every matrix entry used once (paper §3.6, I/O-bounded)"
    }

    fn intensity_model(&self) -> IntensityModel {
        IntensityModel::constant(2.0)
    }

    fn analytic_cost(&self, n: usize, m: usize) -> CostProfile {
        let n64 = n as u64;
        let r = (m / 3).clamp(1, n.max(1)) as u64;
        let c = (m / 3).clamp(1, n.max(1)) as u64;
        // A read once; x re-read once per row block; y written once.
        let io = n64 * n64 + n64.div_ceil(r) * n64 + n64;
        let _ = c;
        CostProfile::new(2 * n64 * n64, io)
    }

    fn min_memory(&self, _n: usize) -> usize {
        3
    }

    fn run_on(
        &self,
        n: usize,
        machine: &HierarchySpec,
        seed: u64,
        verify: Verify,
    ) -> Result<KernelRun, KernelError> {
        // No cheap randomized check exists: verify fully under any policy.
        let _ = verify;
        let m = machine.local_capacity_words();
        if n == 0 {
            return Err(KernelError::BadParameters {
                reason: "matrix size must be positive".into(),
            });
        }
        if m < self.min_memory(n) {
            return Err(KernelError::MemoryTooSmall {
                have: m,
                need: self.min_memory(n),
            });
        }
        // Memory split: y block (r) + x chunk (c) + A row segment (c).
        let r = (m / 3).clamp(1, n);
        let c = (m / 3).clamp(1, n);

        let a_data = workload::random_matrix(n, seed);
        let x_data = workload::random_vector(n, seed ^ 0x5bd1_e995);
        let mut store = ExternalStore::new();
        let a = MatrixHandle::new(store.alloc_from(&a_data), n, n);
        let x = store.alloc_from(&x_data);
        let y = store.alloc(n);

        let mut pe = Pe::for_hierarchy(machine);
        let buf_y = pe.alloc(r)?;
        let buf_x = pe.alloc(c)?;
        let buf_a = pe.alloc(c)?;

        for i0 in (0..n).step_by(r) {
            let rb = r.min(n - i0);
            pe.buf_mut(buf_y)?[..rb].fill(0.0);
            for j0 in (0..n).step_by(c) {
                let cb = c.min(n - j0);
                pe.load(&store, x.at(j0, cb)?, buf_x, 0)?;
                for i in 0..rb {
                    pe.load(&store, a.row_segment(i0 + i, j0, cb)?, buf_a, 0)?;
                    let dot = pe.update(buf_y, &[buf_a, buf_x], |yv, srcs| {
                        let (av, xv) = (srcs[0], srcs[1]);
                        let mut acc = 0.0;
                        for t in 0..cb {
                            acc += av[t] * xv[t];
                        }
                        yv[i] += acc;
                        cb
                    })?;
                    pe.count_ops(2 * dot as u64 + 1);
                }
            }
            pe.store(&mut store, buf_y, 0, y.at(i0, rb)?)?;
        }

        let want = reference::matvec(&a_data, &x_data, n);
        let got = store.slice(y);
        let err = reference::max_abs_diff(&want, got);
        let tol = 1e-10 * (n as f64);
        if err > tol {
            return Err(KernelError::VerificationFailed {
                what: "matvec",
                max_error: err,
                tolerance: tol,
            });
        }

        Ok(KernelRun {
            n,
            m,
            execution: pe.execution(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verifies_across_memories() {
        for m in [3, 12, 100, 1000] {
            let run = MatVec.run(32, m, 7).unwrap();
            assert!(run.execution.cost.comp_ops() >= 2 * 32 * 32, "m={m}");
        }
    }

    #[test]
    fn intensity_saturates_near_two() {
        let n = 64;
        let r_small = MatVec.run(n, 12, 1).unwrap().intensity();
        let r_big = MatVec.run(n, 4096, 1).unwrap().intensity();
        // More memory helps a little (fewer x re-reads) but saturates at 2.
        assert!(r_big <= 2.1, "r_big = {r_big}");
        assert!(r_big - r_small < 1.5, "small {r_small}, big {r_big}");
        assert!(r_big / r_small < 2.5, "no sqrt-like growth allowed");
    }

    #[test]
    fn io_is_at_least_n_squared() {
        let n = 48;
        let run = MatVec.run(n, 10_000, 2).unwrap();
        assert!(run.execution.cost.io_words() >= (n * n) as u64);
    }

    #[test]
    fn io_bounded_flag_set() {
        assert!(MatVec.io_bounded());
    }

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(MatVec.run(0, 100, 0).is_err());
        assert!(MatVec.run(8, 2, 0).is_err());
    }

    #[test]
    fn peak_memory_within_m() {
        let run = MatVec.run(32, 64, 3).unwrap();
        assert!(run.execution.peak_memory.get() <= 64);
    }
}
