//! Memory sweeps: measure `r(M)` curves from real kernel runs.
//!
//! This is the measurement half of every experiment: run a kernel at a fixed
//! problem size across a range of memory sizes, collect the measured
//! `(M, C_comp/C_io)` points, and hand them to `balance-core`'s fitting and
//! curve-inversion machinery.
//!
//! Two executors produce **bit-identical** results:
//!
//! * [`intensity_sweep`] — one point after another on the calling thread;
//! * [`intensity_sweep_par`] — the same points fanned out over
//!   `std::thread::available_parallelism` scoped workers. Every run is
//!   independent (kernels take `&self` and own their `Pe`/`ExternalStore`),
//!   workloads and verification probes are seeded per run, and points are
//!   re-sorted into sweep order before they are returned.
//!
//! Verification cost is a knob ([`SweepConfig::verify`]): `Full` recomputes
//! the `O(n³)` reference at every point, [`Verify::Freivalds`] downgrades
//! all but the first eligible point (the *anchor*, which stays fully
//! verified) to `O(n²)` randomized checks, and `Verify::None` is for timing
//! studies only.

use std::sync::atomic::{AtomicUsize, Ordering};

use balance_core::fit::{fit_best, DataPoint, FitReport};
use balance_core::solver::MeasuredCurve;
use balance_core::{BalanceError, HierarchySpec, LevelSpec, Words, WordsPerSec};

use crate::error::KernelError;
use crate::traits::{Kernel, KernelRun};
use crate::verify::Verify;

/// Parameters of one memory sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepConfig {
    /// Problem size passed to every run.
    pub n: usize,
    /// Memory sizes to measure, in words.
    pub memories: Vec<usize>,
    /// Workload seed (same inputs at every memory size).
    pub seed: u64,
    /// Verification policy per point (the first eligible point is always
    /// fully verified when this is [`Verify::Freivalds`]).
    pub verify: Verify,
}

impl SweepConfig {
    /// A sweep over powers of two `2^lo ..= 2^hi`, fully verified.
    #[must_use]
    pub fn pow2(n: usize, lo: u32, hi: u32, seed: u64) -> Self {
        SweepConfig {
            n,
            memories: (lo..=hi).map(|k| 1usize << k).collect(),
            seed,
            verify: Verify::Full,
        }
    }

    /// The same sweep under a different verification policy.
    #[must_use]
    pub fn with_verify(mut self, verify: Verify) -> Self {
        self.verify = verify;
        self
    }
}

/// The measured result of a sweep.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Kernel name.
    pub kernel: &'static str,
    /// Measured `(M, intensity)` samples.
    pub points: Vec<DataPoint>,
    /// The underlying verified runs.
    pub runs: Vec<KernelRun>,
}

impl SweepResult {
    /// The measured intensity curve (log–log interpolable).
    ///
    /// # Errors
    ///
    /// [`BalanceError::InsufficientData`] with fewer than two samples.
    pub fn curve(&self) -> Result<MeasuredCurve, BalanceError> {
        MeasuredCurve::new(&self.points)
    }

    /// Fits the paper's candidate laws to the measured points.
    ///
    /// # Errors
    ///
    /// [`BalanceError::InsufficientData`] with fewer than two samples.
    pub fn fit(&self) -> Result<FitReport, BalanceError> {
        fit_best(&self.points)
    }
}

/// Memory sizes at or above the kernel's minimum — and, when outer levels
/// are present, strictly below the first outer capacity (level 0 must stay
/// the smallest level of the ladder) — in sweep order.
fn eligible_memories(kernel: &dyn Kernel, cfg: &SweepConfig, outer: &[LevelSpec]) -> Vec<usize> {
    let floor = kernel.min_memory(cfg.n);
    let ceiling = outer
        .first()
        .map_or(u64::MAX, |level| level.capacity().get());
    cfg.memories
        .iter()
        .copied()
        .filter(|&m| m >= floor && (m as u64) < ceiling)
        .collect()
}

/// Rejects a malformed outer ladder up front — before any memory
/// filtering — so even a sweep with zero eligible points reports it.
///
/// # Errors
///
/// [`KernelError::BadParameters`] for non-monotone outer capacities or a
/// ladder too deep to sit under a local level.
fn validate_outer(outer: &[LevelSpec]) -> Result<(), KernelError> {
    if outer.is_empty() {
        return Ok(());
    }
    let bad = |reason: String| KernelError::BadParameters { reason };
    if outer.len() + 1 > balance_core::MAX_MEMORY_LEVELS {
        return Err(bad(format!(
            "{} outer levels plus the local level exceed the supported maximum of {}",
            outer.len(),
            balance_core::MAX_MEMORY_LEVELS
        )));
    }
    // The outer levels on their own must form a valid ladder; the local
    // level below them is covered by the eligibility ceiling.
    HierarchySpec::new(outer.to_vec())
        .map(|_| ())
        .map_err(|e| bad(format!("outer levels: {e}")))
}

/// The machine for one sweep point: local memory `m` under the fixed outer
/// levels (a flat spec when there are none).
///
/// # Errors
///
/// [`KernelError::BadParameters`] when the resulting ladder is malformed
/// (e.g. a zero local capacity from a `min_memory() == 0` kernel).
fn machine_for(m: usize, outer: &[LevelSpec]) -> Result<HierarchySpec, KernelError> {
    if outer.is_empty() {
        return Ok(HierarchySpec::flat_words(m));
    }
    // m = 0 is possible for a kernel whose min_memory is 0: surface it as
    // the documented error, not a panic.
    let bad = |e: &dyn core::fmt::Display| KernelError::BadParameters {
        reason: format!("sweep point M = {m}: {e}"),
    };
    let local =
        LevelSpec::new(Words::new(m as u64), WordsPerSec::new(1.0)).map_err(|e| bad(&e))?;
    let mut levels = vec![local];
    levels.extend_from_slice(outer);
    HierarchySpec::new(levels).map_err(|e| bad(&e))
}

/// The verification policy for point `idx`: under `Freivalds`, the first
/// point is the fully-verified anchor so every sweep retains end-to-end
/// correctness coverage.
fn point_verify(cfg: Verify, idx: usize) -> Verify {
    match cfg {
        Verify::Freivalds { .. } if idx == 0 => Verify::Full,
        other => other,
    }
}

/// Folds per-point results into a [`SweepResult`], stopping at the first
/// error. The iterator is consumed lazily, so when the serial executor
/// passes its *unevaluated* run stream, a failing point aborts the sweep
/// without computing the remaining (expensive) points.
fn collect_sweep(
    kernel: &dyn Kernel,
    results: impl IntoIterator<Item = Result<KernelRun, KernelError>>,
) -> Result<SweepResult, KernelError> {
    let mut points = Vec::new();
    let mut runs = Vec::new();
    for result in results {
        let run = result?;
        points.push(DataPoint::new(run.m as f64, run.intensity()));
        runs.push(run);
    }
    Ok(SweepResult {
        kernel: kernel.name(),
        points,
        runs,
    })
}

/// Runs `kernel` at every memory size in the sweep; skips sizes below the
/// kernel's minimum. Every run is verified under the sweep's policy.
///
/// # Errors
///
/// Propagates the first kernel failure in sweep order (including
/// verification failures — a sweep with wrong numerics must not produce
/// data).
pub fn intensity_sweep(kernel: &dyn Kernel, cfg: &SweepConfig) -> Result<SweepResult, KernelError> {
    hierarchy_sweep(kernel, cfg, &[])
}

/// [`intensity_sweep`] fanned out over scoped worker threads — bit-identical
/// `DataPoint`s, sweep wall-clock divided by the available cores.
///
/// Worker count comes from `std::thread::available_parallelism`; on a
/// single-core host this degrades to the serial executor with zero thread
/// overhead. Points are handed to workers through an atomic cursor and
/// re-sorted into sweep order, so the output (including which point is the
/// fully-verified anchor) does not depend on scheduling.
///
/// # Errors
///
/// As [`intensity_sweep`]: the first failure *in sweep order* (all points
/// are attempted, then inspected in order).
pub fn intensity_sweep_par(
    kernel: &dyn Kernel,
    cfg: &SweepConfig,
) -> Result<SweepResult, KernelError> {
    hierarchy_sweep_par(kernel, cfg, &[])
}

/// Sweeps the local memory `M_1` over `cfg.memories` while the fixed
/// `outer` levels sit below it — the hierarchy generalization of
/// [`intensity_sweep`], and exactly it when `outer` is empty.
///
/// Each run's [`KernelRun::execution`] carries one traffic entry per level
/// (`io_at`, `intensity_at`); the returned `DataPoint`s keep the PE-port
/// intensity, so every fitting/inversion consumer works unchanged.
/// Memory sizes at or above the first outer capacity are skipped (level 0
/// must stay the smallest level), as are sizes below the kernel's minimum.
///
/// # Errors
///
/// As [`intensity_sweep`], plus [`KernelError::BadParameters`] for a
/// malformed `outer` ladder.
pub fn hierarchy_sweep(
    kernel: &dyn Kernel,
    cfg: &SweepConfig,
    outer: &[LevelSpec],
) -> Result<SweepResult, KernelError> {
    validate_outer(outer)?;
    let memories = eligible_memories(kernel, cfg, outer);
    // Lazy map: collect_sweep stops pulling (and thus running) points at
    // the first failure.
    collect_sweep(
        kernel,
        memories.iter().enumerate().map(|(i, &m)| {
            let machine = machine_for(m, outer)?;
            kernel.run_on(cfg.n, &machine, cfg.seed, point_verify(cfg.verify, i))
        }),
    )
}

/// [`hierarchy_sweep`] fanned out over scoped worker threads (the same
/// executor as [`intensity_sweep_par`] — bit-identical points, first error
/// in sweep order).
///
/// # Errors
///
/// As [`hierarchy_sweep`].
pub fn hierarchy_sweep_par(
    kernel: &dyn Kernel,
    cfg: &SweepConfig,
    outer: &[LevelSpec],
) -> Result<SweepResult, KernelError> {
    validate_outer(outer)?;
    let memories = eligible_memories(kernel, cfg, outer);
    let results = par_map(&memories, |i, &m| {
        let machine = machine_for(m, outer)?;
        kernel.run_on(cfg.n, &machine, cfg.seed, point_verify(cfg.verify, i))
    });
    collect_sweep(kernel, results)
}

/// Applies `f` to every item of `items` on a scoped thread pool sized by
/// `std::thread::available_parallelism`, returning outputs **in input
/// order**. `f` receives `(index, &item)`.
///
/// This is the repo's only parallel primitive (rayon is unavailable
/// offline): an atomic cursor feeds indices to workers, each worker
/// accumulates `(index, output)` pairs, and the merged result is sorted by
/// index — deterministic regardless of thread scheduling. With one core
/// (or one item) it runs inline on the caller's thread.
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, U)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else {
                            return local;
                        };
                        local.push((i, f(i, item)));
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| match h.join() {
                Ok(local) => local,
                // Re-raise with the original payload so callers' panic
                // messages (kernel name, size, error) survive the hop.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    indexed.sort_unstable_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, u)| u).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::MatMul;
    use crate::matvec::MatVec;
    use balance_core::fit::FittedLaw;
    use balance_core::GrowthLaw;

    #[test]
    fn pow2_config() {
        let cfg = SweepConfig::pow2(10, 4, 7, 1);
        assert_eq!(cfg.memories, vec![16, 32, 64, 128]);
        assert_eq!(cfg.verify, Verify::Full);
    }

    #[test]
    fn matmul_sweep_fits_sqrt_law() {
        let cfg = SweepConfig::pow2(48, 5, 11, 42);
        let result = intensity_sweep(&MatMul, &cfg).unwrap();
        assert!(result.points.len() >= 6);
        let fit = result.fit().unwrap();
        match fit.best {
            FittedLaw::Power { exponent, .. } => {
                assert!((exponent - 0.5).abs() < 0.12, "fitted exponent {exponent}");
            }
            other => panic!("expected power law, got {other}"),
        }
    }

    #[test]
    fn matvec_sweep_fits_constant_law() {
        let cfg = SweepConfig::pow2(64, 5, 12, 42);
        let result = intensity_sweep(&MatVec, &cfg).unwrap();
        let fit = result.fit().unwrap();
        assert_eq!(
            fit.best.growth_law(),
            GrowthLaw::Impossible,
            "got {}",
            fit.best
        );
    }

    #[test]
    fn sweep_skips_too_small_memories() {
        let cfg = SweepConfig {
            n: 16,
            memories: vec![1, 2, 64],
            seed: 0,
            verify: Verify::Full,
        };
        let result = intensity_sweep(&MatMul, &cfg).unwrap();
        assert_eq!(result.points.len(), 1);
    }

    #[test]
    fn curve_supports_empirical_rebalance() {
        let cfg = SweepConfig::pow2(48, 5, 11, 7);
        let result = intensity_sweep(&MatMul, &cfg).unwrap();
        let curve = result.curve().unwrap();
        // alpha = 2 on sqrt-law data: memory should grow ~4x.
        let m_new = curve.empirical_rebalance(2.0, 256.0).unwrap();
        let factor = m_new / 256.0;
        assert!(
            (2.5..6.5).contains(&factor),
            "empirical growth factor {factor}"
        );
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        for verify in [Verify::Full, Verify::Freivalds { rounds: 2 }] {
            let cfg = SweepConfig::pow2(32, 5, 10, 9).with_verify(verify);
            let serial = intensity_sweep(&MatMul, &cfg).unwrap();
            let par = intensity_sweep_par(&MatMul, &cfg).unwrap();
            assert_eq!(serial.points.len(), par.points.len());
            for (s, p) in serial.points.iter().zip(&par.points) {
                assert_eq!(s.memory.to_bits(), p.memory.to_bits());
                assert_eq!(s.ratio.to_bits(), p.ratio.to_bits());
            }
            assert_eq!(serial.runs, par.runs);
        }
    }

    #[test]
    fn freivalds_sweep_matches_full_sweep_measurements() {
        // Verification mode must not change what is measured, only how the
        // output is checked.
        let base = SweepConfig::pow2(48, 5, 9, 4);
        let full = intensity_sweep(&MatMul, &base).unwrap();
        let cheap = intensity_sweep(
            &MatMul,
            &base.clone().with_verify(Verify::Freivalds { rounds: 1 }),
        )
        .unwrap();
        assert_eq!(full.runs, cheap.runs);
    }

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<usize> = (0..257).collect();
        let out = par_map(&items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        assert_eq!(par_map::<usize, usize, _>(&[], |_, &x| x), Vec::<usize>::new());
    }

    /// A kernel that fails at every memory size, each failure naming its
    /// `m` — lets the tests observe *which* error an executor surfaces.
    #[derive(Debug)]
    struct AlwaysFails;

    impl Kernel for AlwaysFails {
        fn name(&self) -> &'static str {
            "always-fails"
        }
        fn description(&self) -> &'static str {
            "test kernel: every run fails, tagged with its m"
        }
        fn intensity_model(&self) -> balance_core::IntensityModel {
            balance_core::IntensityModel::constant(1.0)
        }
        fn analytic_cost(&self, _n: usize, _m: usize) -> balance_core::CostProfile {
            balance_core::CostProfile::new(0, 0)
        }
        fn min_memory(&self, _n: usize) -> usize {
            4
        }
        fn run_on(
            &self,
            _n: usize,
            machine: &HierarchySpec,
            _seed: u64,
            _verify: Verify,
        ) -> Result<KernelRun, KernelError> {
            Err(KernelError::BadParameters {
                reason: format!("injected failure at m={}", machine.local_capacity_words()),
            })
        }
    }

    #[test]
    fn both_executors_report_the_first_error_in_sweep_order() {
        let cfg = SweepConfig {
            n: 8,
            memories: vec![1, 64, 16, 256], // 1 skipped (< min_memory)
            seed: 0,
            verify: Verify::Full,
        };
        for result in [
            intensity_sweep(&AlwaysFails, &cfg),
            intensity_sweep_par(&AlwaysFails, &cfg),
        ] {
            match result {
                Err(KernelError::BadParameters { reason }) => {
                    // First *eligible* point in sweep order, not the
                    // smallest m and not whichever worker finished first.
                    assert_eq!(reason, "injected failure at m=64");
                }
                other => panic!("expected the m=64 failure, got {other:?}"),
            }
        }
    }

    #[test]
    fn sweep_with_only_ineligible_memories_is_empty_ok() {
        let cfg = SweepConfig {
            n: 8,
            memories: vec![1, 2], // both below MatMul::min_memory
            seed: 0,
            verify: Verify::Full,
        };
        let result = intensity_sweep_par(&MatMul, &cfg).unwrap();
        assert!(result.points.is_empty());
    }

    fn outer_levels(caps: &[u64]) -> Vec<LevelSpec> {
        caps.iter()
            .map(|&c| LevelSpec::new(Words::new(c), WordsPerSec::new(1.0)).unwrap())
            .collect()
    }

    #[test]
    fn hierarchy_sweep_with_no_outer_levels_is_intensity_sweep() {
        let cfg = SweepConfig::pow2(32, 5, 9, 11);
        let flat = intensity_sweep(&MatMul, &cfg).unwrap();
        let hier = hierarchy_sweep(&MatMul, &cfg, &[]).unwrap();
        assert_eq!(flat.runs, hier.runs);
    }

    #[test]
    fn hierarchy_sweep_reports_inclusive_per_level_traffic() {
        let cfg = SweepConfig::pow2(24, 5, 8, 3);
        let outer = outer_levels(&[1024, 4096]);
        let result = hierarchy_sweep(&MatMul, &cfg, &outer).unwrap();
        assert!(!result.runs.is_empty());
        for run in &result.runs {
            assert_eq!(run.execution.cost.level_count(), 3, "m = {}", run.m);
            assert!(
                run.execution.cost.traffic().is_monotone_non_increasing(),
                "m = {}: {}",
                run.m,
                run.execution.cost.traffic()
            );
        }
    }

    #[test]
    fn hierarchy_sweep_port_traffic_matches_flat_sweep() {
        // The outer levels only observe; the PE-port measurement (and thus
        // every DataPoint) is identical to the flat sweep.
        let cfg = SweepConfig::pow2(24, 5, 8, 3);
        let flat = intensity_sweep(&MatMul, &cfg).unwrap();
        let hier = hierarchy_sweep(&MatMul, &cfg, &outer_levels(&[4096])).unwrap();
        assert_eq!(flat.points.len(), hier.points.len());
        for (f, h) in flat.points.iter().zip(&hier.points) {
            assert_eq!(f.memory.to_bits(), h.memory.to_bits());
            assert_eq!(f.ratio.to_bits(), h.ratio.to_bits());
        }
    }

    #[test]
    fn hierarchy_sweep_par_is_bit_identical_to_serial() {
        let cfg = SweepConfig::pow2(24, 5, 9, 5);
        let outer = outer_levels(&[2048]);
        let serial = hierarchy_sweep(&MatMul, &cfg, &outer).unwrap();
        let par = hierarchy_sweep_par(&MatMul, &cfg, &outer).unwrap();
        assert_eq!(serial.runs, par.runs);
    }

    #[test]
    fn hierarchy_sweep_skips_memories_at_or_above_first_outer_capacity() {
        let cfg = SweepConfig {
            n: 16,
            memories: vec![16, 64, 128, 256],
            seed: 0,
            verify: Verify::Full,
        };
        let result = hierarchy_sweep(&MatMul, &cfg, &outer_levels(&[128])).unwrap();
        let ms: Vec<usize> = result.runs.iter().map(|r| r.m).collect();
        assert_eq!(ms, vec![16, 64]);
    }

    #[test]
    fn hierarchy_sweep_rejects_malformed_outer_ladders() {
        let cfg = SweepConfig {
            n: 16,
            memories: vec![16],
            seed: 0,
            verify: Verify::Full,
        };
        // Outer capacities must grow: 4096 then 1024 is rejected.
        let err = hierarchy_sweep(&MatMul, &cfg, &outer_levels(&[4096, 1024])).unwrap_err();
        assert!(matches!(err, KernelError::BadParameters { .. }), "{err}");
        // ... even when no sweep point survives the eligibility filter
        // (the ladder is validated up front, not per point).
        let empty_cfg = SweepConfig {
            n: 16,
            memories: vec![8192], // >= first outer capacity: filtered out
            seed: 0,
            verify: Verify::Full,
        };
        for result in [
            hierarchy_sweep(&MatMul, &empty_cfg, &outer_levels(&[4096, 1024])),
            hierarchy_sweep_par(&MatMul, &empty_cfg, &outer_levels(&[4096, 1024])),
        ] {
            assert!(matches!(result, Err(KernelError::BadParameters { .. })));
        }
    }
}
