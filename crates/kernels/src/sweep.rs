//! Memory sweeps: measure `r(M)` curves from real kernel runs.
//!
//! This is the measurement half of every experiment: run a kernel at a fixed
//! problem size across a range of memory sizes, collect the measured
//! `(M, C_comp/C_io)` points, and hand them to `balance-core`'s fitting and
//! curve-inversion machinery.

use balance_core::fit::{fit_best, DataPoint, FitReport};
use balance_core::solver::MeasuredCurve;
use balance_core::BalanceError;

use crate::error::KernelError;
use crate::traits::{Kernel, KernelRun};

/// Parameters of one memory sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepConfig {
    /// Problem size passed to every run.
    pub n: usize,
    /// Memory sizes to measure, in words.
    pub memories: Vec<usize>,
    /// Workload seed (same inputs at every memory size).
    pub seed: u64,
}

impl SweepConfig {
    /// A sweep over powers of two `2^lo ..= 2^hi`.
    #[must_use]
    pub fn pow2(n: usize, lo: u32, hi: u32, seed: u64) -> Self {
        SweepConfig {
            n,
            memories: (lo..=hi).map(|k| 1usize << k).collect(),
            seed,
        }
    }
}

/// The measured result of a sweep.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Kernel name.
    pub kernel: &'static str,
    /// Measured `(M, intensity)` samples.
    pub points: Vec<DataPoint>,
    /// The underlying verified runs.
    pub runs: Vec<KernelRun>,
}

impl SweepResult {
    /// The measured intensity curve (log–log interpolable).
    ///
    /// # Errors
    ///
    /// [`BalanceError::InsufficientData`] with fewer than two samples.
    pub fn curve(&self) -> Result<MeasuredCurve, BalanceError> {
        MeasuredCurve::new(&self.points)
    }

    /// Fits the paper's candidate laws to the measured points.
    ///
    /// # Errors
    ///
    /// [`BalanceError::InsufficientData`] with fewer than two samples.
    pub fn fit(&self) -> Result<FitReport, BalanceError> {
        fit_best(&self.points)
    }
}

/// Runs `kernel` at every memory size in the sweep; skips sizes below the
/// kernel's minimum. Every run is verified.
///
/// # Errors
///
/// Propagates the first kernel failure (including verification failures —
/// a sweep with wrong numerics must not produce data).
pub fn intensity_sweep(kernel: &dyn Kernel, cfg: &SweepConfig) -> Result<SweepResult, KernelError> {
    let mut points = Vec::new();
    let mut runs = Vec::new();
    for &m in &cfg.memories {
        if m < kernel.min_memory(cfg.n) {
            continue;
        }
        let run = kernel.run(cfg.n, m, cfg.seed)?;
        points.push(DataPoint::new(m as f64, run.intensity()));
        runs.push(run);
    }
    Ok(SweepResult {
        kernel: kernel.name(),
        points,
        runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::MatMul;
    use crate::matvec::MatVec;
    use balance_core::fit::FittedLaw;
    use balance_core::GrowthLaw;

    #[test]
    fn pow2_config() {
        let cfg = SweepConfig::pow2(10, 4, 7, 1);
        assert_eq!(cfg.memories, vec![16, 32, 64, 128]);
    }

    #[test]
    fn matmul_sweep_fits_sqrt_law() {
        let cfg = SweepConfig::pow2(48, 5, 11, 42);
        let result = intensity_sweep(&MatMul, &cfg).unwrap();
        assert!(result.points.len() >= 6);
        let fit = result.fit().unwrap();
        match fit.best {
            FittedLaw::Power { exponent, .. } => {
                assert!((exponent - 0.5).abs() < 0.12, "fitted exponent {exponent}");
            }
            other => panic!("expected power law, got {other}"),
        }
    }

    #[test]
    fn matvec_sweep_fits_constant_law() {
        let cfg = SweepConfig::pow2(64, 5, 12, 42);
        let result = intensity_sweep(&MatVec, &cfg).unwrap();
        let fit = result.fit().unwrap();
        assert_eq!(
            fit.best.growth_law(),
            GrowthLaw::Impossible,
            "got {}",
            fit.best
        );
    }

    #[test]
    fn sweep_skips_too_small_memories() {
        let cfg = SweepConfig {
            n: 16,
            memories: vec![1, 2, 64],
            seed: 0,
        };
        let result = intensity_sweep(&MatMul, &cfg).unwrap();
        assert_eq!(result.points.len(), 1);
    }

    #[test]
    fn curve_supports_empirical_rebalance() {
        let cfg = SweepConfig::pow2(48, 5, 11, 7);
        let result = intensity_sweep(&MatMul, &cfg).unwrap();
        let curve = result.curve().unwrap();
        // alpha = 2 on sqrt-law data: memory should grow ~4x.
        let m_new = curve.empirical_rebalance(2.0, 256.0).unwrap();
        let factor = m_new / 256.0;
        assert!(
            (2.5..6.5).contains(&factor),
            "empirical growth factor {factor}"
        );
    }
}
