//! Memory sweeps: measure `r(M)` curves from real kernel runs.
//!
//! This is the measurement half of every experiment: run a kernel at a fixed
//! problem size across a range of memory sizes, collect the measured
//! `(M, C_comp/C_io)` points, and hand them to `balance-core`'s fitting and
//! curve-inversion machinery.
//!
//! Two executors produce **bit-identical** results:
//!
//! * [`intensity_sweep`] — one point after another on the calling thread;
//! * [`intensity_sweep_par`] — the same points fanned out over
//!   `std::thread::available_parallelism` scoped workers. Every run is
//!   independent (kernels take `&self` and own their `Pe`/`ExternalStore`),
//!   workloads and verification probes are seeded per run, and points are
//!   re-sorted into sweep order before they are returned.
//!
//! Verification cost is a knob ([`SweepConfig::verify`]): `Full` recomputes
//! the `O(n³)` reference at every point, [`Verify::Freivalds`] downgrades
//! all but the first eligible point (the *anchor*, which stays fully
//! verified) to `O(n²)` randomized checks, and `Verify::None` is for timing
//! studies only.
//!
//! ## One-pass capacity sweeps
//!
//! [`capacity_sweep`] is the third executor family: it measures the
//! **cache-model** curve — the kernel's canonical trace
//! ([`Kernel::access_trace`]) replayed through an automatically managed
//! LRU of capacity `M` — instead of running the explicit decomposition
//! scheme per point. Because LRU is a stack algorithm, the whole curve is
//! a pure function of one reuse-distance histogram, so the
//! [`Engine::StackDist`] engine replays the trace **once** and reads every
//! `M` off the histogram in O(1), where [`Engine::Replay`] replays once
//! per memory size. The two engines are bit-identical across the kernel
//! registry (pinned by property test); [`Engine::auto`] picks stack
//! distance once a sweep has ≥ 4 points, where the single replay
//! amortizes. [`hierarchy_capacity_sweep`] is the multi-level read: every
//! ladder boundary's traffic from the same histogram.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use balance_core::fit::{fit_best, DataPoint, FitReport};
use balance_core::solver::MeasuredCurve;
use balance_core::{
    Access, BalanceError, Budget, BudgetTrip, CostProfile, Execution, HierarchySpec, LevelSpec,
    Words, WordsPerSec,
};
use balance_machine::{
    resumable_replay, sampled_profile_of, sampled_profile_of_bounded, segmented_profile_of,
    segmented_profile_resumable, CapacityProfile, CheckpointPolicy, FaultPlan, Hierarchy,
    LruCache, MemorySystem as _, ReplayControl, ReplayInterrupt, SampledStackDistance,
    StackDistance, MAX_SAMPLE_SHIFT,
};

use crate::error::KernelError;
use crate::trace::AccessTrace;
use crate::traits::{Kernel, KernelRun};
use crate::verify::Verify;

/// Which measurement engine a capacity sweep runs on.
///
/// The first three engines produce **bit-identical** [`DataPoint`]s
/// (pinned by property test across the kernel registry); they differ
/// only in cost: `Replay` is `O(#points · |trace|)`, `StackDist` is
/// `O(|trace| · log U + #points)`, and `StackDistPar` divides the
/// `|trace|` term across K scoped threads (plus an `O(K·U·log U)` merge
/// — exact, per [`balance_machine::segmented`]). `Sampled` is the
/// approximate tier: SHARDS-style hash sampling at rate `2^-shift`
/// ([`balance_machine::sampling`]) cuts the replay cost by ~the rate and
/// marks its points' profiles non-exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// One full trace replay per memory size, each through an actual
    /// [`LruCache`] / [`Hierarchy`] model — the reference engine.
    Replay,
    /// One trace replay total: Mattson stack-distance accounting
    /// ([`StackDistance`]), every capacity read off the histogram.
    #[default]
    StackDist,
    /// Segmented parallel Mattson: the trace split into time ranges, one
    /// scoped thread each, merged exactly — bit-identical to
    /// [`Engine::StackDist`]. `threads = 0` means
    /// `std::thread::available_parallelism()`.
    StackDistPar {
        /// Segment/worker count (0 = available parallelism).
        threads: usize,
    },
    /// SHARDS-style hash-sampled approximate profile at rate `2^-shift`
    /// (`shift = 0` degenerates to the exact one-pass engine).
    Sampled {
        /// Sampling-rate exponent (rate = `2^-shift`).
        shift: u32,
    },
    /// Zero-replay tier: the kernel's closed-form reuse-distance
    /// histogram ([`Kernel::analytic_profile`]), exact bit-for-bit
    /// against the one-pass engines at every capacity (registry-pinned by
    /// proptest) and `O(poly(log n))` in the trace length — curves at
    /// sizes no replay could touch. Only kernels that derive a histogram
    /// support it; the rest fail with `BadParameters` (and are never
    /// auto-selected into this tier — see [`Engine::auto_for_kernel`]).
    Analytic,
}

/// Trace length beyond which [`Engine::auto_for`] escalates from the
/// serial one-pass engine to the segmented parallel one (2²⁷ ≈ 134M
/// addresses — roughly a second of serial histogram work).
pub const AUTO_SEGMENT_LEN: u64 = 1 << 27;

impl Engine {
    /// The recommended engine for a sweep of `points` memory sizes: the
    /// one-pass engine as soon as it amortizes (≥ 4 points), the plain
    /// replay below that.
    #[must_use]
    pub fn auto(points: usize) -> Engine {
        if points >= 4 {
            Engine::StackDist
        } else {
            Engine::Replay
        }
    }

    /// [`Engine::auto`] with the trace length in hand: escalates to the
    /// segmented parallel engine ([`Engine::StackDistPar`], auto thread
    /// count) past [`AUTO_SEGMENT_LEN`] addresses. Sampling is never
    /// chosen automatically — trading exactness is the caller's call.
    #[must_use]
    pub fn auto_for(points: usize, trace_len: u64) -> Engine {
        if points >= 4 && trace_len >= AUTO_SEGMENT_LEN {
            Engine::StackDistPar { threads: 0 }
        } else {
            Engine::auto(points)
        }
    }

    /// [`Engine::auto_for`] with the kernel in hand: the zero-replay
    /// [`Engine::Analytic`] tier whenever the kernel derives a histogram
    /// at this `n` (exactness is contractual, so there is nothing to
    /// trade), otherwise the trace-length escalation of
    /// [`Engine::auto_for`].
    #[must_use]
    pub fn auto_for_kernel(points: usize, kernel: &dyn Kernel, n: usize) -> Engine {
        if kernel.analytic_profile(n).is_some() {
            Engine::Analytic
        } else {
            match kernel.access_trace(n) {
                Some(trace) => Engine::auto_for(points, trace.len()),
                None => Engine::auto(points),
            }
        }
    }

    /// [`Engine::auto_for_kernel`] with the traffic model in hand. Under
    /// the word-granular read-priced model it is exactly
    /// [`Engine::auto_for_kernel`]; under a device-real model the
    /// closed-form, segmented, and sampled tiers are all word-granular
    /// machinery and are never chosen — the one-pass tagged engine is the
    /// fast exact tier (on the same ≥ 4-point amortization threshold as
    /// [`Engine::auto`]), the per-point replay below that.
    #[must_use]
    pub fn auto_for_model(
        points: usize,
        kernel: &dyn Kernel,
        n: usize,
        model: TrafficModel,
    ) -> Engine {
        if model.is_word_granular_read_priced() {
            Engine::auto_for_kernel(points, kernel, n)
        } else if points >= 4 {
            Engine::StackDist
        } else {
            Engine::Replay
        }
    }
}

/// The traffic model a capacity sweep prices: transfer granularity and
/// whether stores are tagged and dirty evictions ledgered as a second
/// write-back stream.
///
/// The default ([`TrafficModel::WORD`]) is the paper's model — one word
/// per transfer, every miss a read — and routes every sweep through the
/// exact code paths that existed before the device-real refactor, so the
/// numbers are bit-identical (pinned by property test across the
/// registry). Any other setting selects the device-real measurement
/// paths: line-granular LRU state and, with [`TrafficModel::writebacks`]
/// on, a dirty-bit write-back ledger per boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TrafficModel {
    /// Transfer granularity in words (a power of two; 1 = the paper's
    /// word-granular model).
    pub line_words: u64,
    /// Whether stores are tagged and dirty evictions charged as a
    /// separate write-back stream (plus the end-of-run flush).
    pub writebacks: bool,
}

impl Default for TrafficModel {
    fn default() -> Self {
        TrafficModel::WORD
    }
}

impl TrafficModel {
    /// The paper's model: word-granular transfers, all misses priced as
    /// reads, no write-back ledger.
    pub const WORD: TrafficModel = TrafficModel {
        line_words: 1,
        writebacks: false,
    };

    /// A device-real model: `line_words`-granular transfers with the
    /// dirty-write-back ledger on.
    #[must_use]
    pub const fn device(line_words: u64) -> Self {
        TrafficModel {
            line_words,
            writebacks: true,
        }
    }

    /// True for the word-granular all-read model — the configuration
    /// every pre-device code path (analytic tier, segmented engine,
    /// sampling, budget ladder) implements exactly.
    #[must_use]
    pub const fn is_word_granular_read_priced(&self) -> bool {
        self.line_words <= 1 && !self.writebacks
    }

    /// Validates the model's shape (the same rule as
    /// [`LevelSpec::with_line_words`]: a positive power of two).
    ///
    /// # Errors
    ///
    /// [`KernelError::BadParameters`] for a zero or non-power-of-two line
    /// size.
    fn validate(&self) -> Result<(), KernelError> {
        if self.line_words == 0 || !self.line_words.is_power_of_two() {
            return Err(KernelError::BadParameters {
                reason: format!(
                    "line size must be a positive power of two words, got {}",
                    self.line_words
                ),
            });
        }
        Ok(())
    }
}

/// Parameters of one memory sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepConfig {
    /// Problem size passed to every run.
    pub n: usize,
    /// Memory sizes to measure, in words.
    pub memories: Vec<usize>,
    /// Workload seed (same inputs at every memory size).
    pub seed: u64,
    /// Verification policy per point (the first eligible point is always
    /// fully verified when this is [`Verify::Freivalds`]).
    pub verify: Verify,
    /// Measurement engine for the *capacity* executors
    /// ([`capacity_sweep`] / [`hierarchy_capacity_sweep`]); the
    /// kernel-running executors ignore it (they execute the decomposition
    /// scheme, which no single trace can stand in for).
    pub engine: Engine,
    /// Optional resource budget for the capacity executors. When any
    /// limit trips, the measurement **degrades** along the engine ladder
    /// (see [`robust_capacity_profile`]) instead of aborting, and the
    /// substitution is reported in [`SweepResult::provenance`]. `None`
    /// runs unbounded. The kernel-running executors ignore it.
    pub budget: Option<Budget>,
    /// Optional checkpoint policy for the capacity executors: the replay
    /// persists resumable engine snapshots every
    /// [`CheckpointPolicy::every`] addresses, so a killed sweep re-run
    /// with the same config resumes instead of restarting (see
    /// [`balance_machine::checkpoint`]). The kernel-running executors
    /// ignore it.
    pub checkpoint: Option<CheckpointPolicy>,
    /// The traffic model the capacity executors price
    /// ([`TrafficModel::WORD`] by default — bit-identical to every
    /// pre-device sweep). The kernel-running executors ignore it: a
    /// decomposition scheme moves its words explicitly, so there is no
    /// cache state for a line size or dirty bit to live in.
    pub traffic: TrafficModel,
}

impl Default for SweepConfig {
    /// An empty sweep skeleton for struct-update syntax
    /// (`SweepConfig { n, memories, ..Default::default() }`): no points,
    /// seed 0, full verification, default engine, no budget, no
    /// checkpoints.
    fn default() -> Self {
        SweepConfig {
            n: 0,
            memories: Vec::new(),
            seed: 0,
            verify: Verify::Full,
            engine: Engine::default(),
            budget: None,
            checkpoint: None,
            traffic: TrafficModel::default(),
        }
    }
}

impl SweepConfig {
    /// A sweep over powers of two `2^lo ..= 2^hi`, fully verified, with
    /// the engine [`Engine::auto`] recommends for the point count.
    #[must_use]
    pub fn pow2(n: usize, lo: u32, hi: u32, seed: u64) -> Self {
        let memories: Vec<usize> = (lo..=hi).map(|k| 1usize << k).collect();
        SweepConfig {
            n,
            engine: Engine::auto(memories.len()),
            memories,
            seed,
            ..SweepConfig::default()
        }
    }

    /// The same sweep under a different verification policy.
    #[must_use]
    pub fn with_verify(mut self, verify: Verify) -> Self {
        self.verify = verify;
        self
    }

    /// The same sweep on an explicit measurement engine.
    #[must_use]
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// The same sweep under a resource budget (graceful degradation).
    #[must_use]
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// The same sweep with resumable checkpoints persisted per `policy`.
    #[must_use]
    pub fn with_checkpoint(mut self, policy: CheckpointPolicy) -> Self {
        self.checkpoint = Some(policy);
        self
    }

    /// The same sweep under a different traffic model (line granularity
    /// and write-back pricing for the capacity executors).
    #[must_use]
    pub fn with_traffic(mut self, traffic: TrafficModel) -> Self {
        self.traffic = traffic;
        self
    }
}

/// The measured result of a sweep.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Kernel name.
    pub kernel: &'static str,
    /// Measured `(M, intensity)` samples.
    pub points: Vec<DataPoint>,
    /// The underlying verified runs.
    pub runs: Vec<KernelRun>,
    /// How the measurement was actually obtained, when the sweep ran
    /// under a budget or checkpoint policy ([`SweepConfig::budget`] /
    /// [`SweepConfig::checkpoint`]): requested vs. used engine, every
    /// degradation step taken, and resume/checkpoint counters. `None`
    /// for unbudgeted sweeps (the engine is exactly
    /// [`SweepConfig::engine`]).
    pub provenance: Option<Provenance>,
}

impl SweepResult {
    /// The measured intensity curve (log–log interpolable).
    ///
    /// # Errors
    ///
    /// [`BalanceError::InsufficientData`] with fewer than two samples.
    pub fn curve(&self) -> Result<MeasuredCurve, BalanceError> {
        MeasuredCurve::new(&self.points)
    }

    /// Fits the paper's candidate laws to the measured points.
    ///
    /// # Errors
    ///
    /// [`BalanceError::InsufficientData`] with fewer than two samples.
    pub fn fit(&self) -> Result<FitReport, BalanceError> {
        fit_best(&self.points)
    }
}

/// Memory sizes at or above the kernel's minimum — and, when outer levels
/// are present, strictly below the first outer capacity (level 0 must stay
/// the smallest level of the ladder) — in sweep order.
fn eligible_memories(kernel: &dyn Kernel, cfg: &SweepConfig, outer: &[LevelSpec]) -> Vec<usize> {
    let floor = kernel.min_memory(cfg.n);
    let ceiling = outer
        .first()
        .map_or(u64::MAX, |level| level.capacity().get());
    cfg.memories
        .iter()
        .copied()
        .filter(|&m| m >= floor && (m as u64) < ceiling)
        .collect()
}

/// Rejects a malformed outer ladder up front — before any memory
/// filtering — so even a sweep with zero eligible points reports it.
///
/// # Errors
///
/// [`KernelError::BadParameters`] for non-monotone outer capacities or a
/// ladder too deep to sit under a local level.
fn validate_outer(outer: &[LevelSpec]) -> Result<(), KernelError> {
    if outer.is_empty() {
        return Ok(());
    }
    let bad = |reason: String| KernelError::BadParameters { reason };
    if outer.len() + 1 > balance_core::MAX_MEMORY_LEVELS {
        return Err(bad(format!(
            "{} outer levels plus the local level exceed the supported maximum of {}",
            outer.len(),
            balance_core::MAX_MEMORY_LEVELS
        )));
    }
    // The outer levels on their own must form a valid ladder; the local
    // level below them is covered by the eligibility ceiling.
    HierarchySpec::new(outer.to_vec())
        .map(|_| ())
        .map_err(|e| bad(format!("outer levels: {e}")))
}

/// The kernel-running executors count each scheme's explicit word-granular
/// transfers; a device-real outer level (line-granular transfers or a
/// split write channel) would be silently mispriced, so it is refused with
/// a pointer to the capacity sweeps, which model both.
fn reject_device_outer(outer: &[LevelSpec]) -> Result<(), KernelError> {
    if let Some(i) = outer.iter().position(LevelSpec::is_device_real) {
        return Err(KernelError::BadParameters {
            reason: format!(
                "outer level {} is device-real (line size {} words{}), but the \
                 kernel-running executors count explicit word-granular transfers; \
                 use the capacity sweeps with SweepConfig::with_traffic to price \
                 line-granular or write-back traffic",
                i + 2,
                outer[i].line_words(),
                if outer[i].write_bandwidth().is_some() {
                    ", split write channel"
                } else {
                    ""
                }
            ),
        });
    }
    Ok(())
}

/// True when a capacity sweep must run on the device-real path: a
/// non-trivial [`TrafficModel`], or an outer level annotated with its own
/// line size / write channel (the legacy word path would silently ignore
/// the annotation).
fn needs_device_path(cfg: &SweepConfig, outer: &[LevelSpec]) -> bool {
    !cfg.traffic.is_word_granular_read_priced() || outer.iter().any(LevelSpec::is_device_real)
}

/// The machine for one sweep point: local memory `m` under the fixed outer
/// levels (a flat spec when there are none).
///
/// # Errors
///
/// [`KernelError::BadParameters`] when the resulting ladder is malformed
/// (e.g. a zero local capacity from a `min_memory() == 0` kernel).
fn machine_for(m: usize, outer: &[LevelSpec]) -> Result<HierarchySpec, KernelError> {
    if outer.is_empty() {
        return Ok(HierarchySpec::flat_words(m));
    }
    // m = 0 is possible for a kernel whose min_memory is 0: surface it as
    // the documented error, not a panic.
    let bad = |e: &dyn core::fmt::Display| KernelError::BadParameters {
        reason: format!("sweep point M = {m}: {e}"),
    };
    let local =
        LevelSpec::new(Words::new(m as u64), WordsPerSec::new(1.0)).map_err(|e| bad(&e))?;
    let mut levels = vec![local];
    levels.extend_from_slice(outer);
    HierarchySpec::new(levels).map_err(|e| bad(&e))
}

/// The verification policy for point `idx`: under `Freivalds`, the first
/// point is the fully-verified anchor so every sweep retains end-to-end
/// correctness coverage.
fn point_verify(cfg: Verify, idx: usize) -> Verify {
    match cfg {
        Verify::Freivalds { .. } if idx == 0 => Verify::Full,
        other => other,
    }
}

/// Folds per-point results into a [`SweepResult`], stopping at the first
/// error. The iterator is consumed lazily, so when the serial executor
/// passes its *unevaluated* run stream, a failing point aborts the sweep
/// without computing the remaining (expensive) points.
fn collect_sweep(
    kernel: &dyn Kernel,
    results: impl IntoIterator<Item = Result<KernelRun, KernelError>>,
) -> Result<SweepResult, KernelError> {
    let mut points = Vec::new();
    let mut runs = Vec::new();
    for result in results {
        let run = result?;
        points.push(DataPoint::new(run.m as f64, run.intensity()));
        runs.push(run);
    }
    Ok(SweepResult {
        kernel: kernel.name(),
        points,
        runs,
        provenance: None,
    })
}

/// Runs `kernel` at every memory size in the sweep; skips sizes below the
/// kernel's minimum. Every run is verified under the sweep's policy.
///
/// # Errors
///
/// Propagates the first kernel failure in sweep order (including
/// verification failures — a sweep with wrong numerics must not produce
/// data).
pub fn intensity_sweep(kernel: &dyn Kernel, cfg: &SweepConfig) -> Result<SweepResult, KernelError> {
    hierarchy_sweep(kernel, cfg, &[])
}

/// [`intensity_sweep`] fanned out over scoped worker threads — bit-identical
/// `DataPoint`s, sweep wall-clock divided by the available cores.
///
/// Worker count comes from `std::thread::available_parallelism`; on a
/// single-core host this degrades to the serial executor with zero thread
/// overhead. Points are handed to workers through an atomic cursor and
/// re-sorted into sweep order, so the output (including which point is the
/// fully-verified anchor) does not depend on scheduling.
///
/// # Errors
///
/// As [`intensity_sweep`]: the first failure *in sweep order* (all points
/// are attempted, then inspected in order).
pub fn intensity_sweep_par(
    kernel: &dyn Kernel,
    cfg: &SweepConfig,
) -> Result<SweepResult, KernelError> {
    hierarchy_sweep_par(kernel, cfg, &[])
}

/// Sweeps the local memory `M_1` over `cfg.memories` while the fixed
/// `outer` levels sit below it — the hierarchy generalization of
/// [`intensity_sweep`], and exactly it when `outer` is empty.
///
/// Each run's [`KernelRun::execution`] carries one traffic entry per level
/// (`io_at`, `intensity_at`); the returned `DataPoint`s keep the PE-port
/// intensity, so every fitting/inversion consumer works unchanged.
/// Memory sizes at or above the first outer capacity are skipped (level 0
/// must stay the smallest level), as are sizes below the kernel's minimum.
///
/// # Errors
///
/// As [`intensity_sweep`], plus [`KernelError::BadParameters`] for a
/// malformed `outer` ladder.
pub fn hierarchy_sweep(
    kernel: &dyn Kernel,
    cfg: &SweepConfig,
    outer: &[LevelSpec],
) -> Result<SweepResult, KernelError> {
    validate_outer(outer)?;
    reject_device_outer(outer)?;
    let memories = eligible_memories(kernel, cfg, outer);
    // Lazy map: collect_sweep stops pulling (and thus running) points at
    // the first failure.
    collect_sweep(
        kernel,
        memories.iter().enumerate().map(|(i, &m)| {
            let machine = machine_for(m, outer)?;
            kernel.run_on(cfg.n, &machine, cfg.seed, point_verify(cfg.verify, i))
        }),
    )
}

/// [`hierarchy_sweep`] fanned out over scoped worker threads (the same
/// executor as [`intensity_sweep_par`] — bit-identical points, first error
/// in sweep order).
///
/// # Errors
///
/// As [`hierarchy_sweep`].
pub fn hierarchy_sweep_par(
    kernel: &dyn Kernel,
    cfg: &SweepConfig,
    outer: &[LevelSpec],
) -> Result<SweepResult, KernelError> {
    validate_outer(outer)?;
    reject_device_outer(outer)?;
    let memories = eligible_memories(kernel, cfg, outer);
    let results = par_map(&memories, |i, &m| {
        let machine = machine_for(m, outer)?;
        kernel.run_on(cfg.n, &machine, cfg.seed, point_verify(cfg.verify, i))
    });
    collect_sweep(kernel, results)
}

/// The kernel's canonical trace, or the documented error for kernels (or
/// sizes) without one.
fn trace_for(kernel: &dyn Kernel, n: usize) -> Result<AccessTrace, KernelError> {
    kernel
        .access_trace(n)
        .ok_or_else(|| KernelError::BadParameters {
            reason: format!(
                "{} has no canonical access trace at n = {n} (capacity sweeps \
                 need one; use the kernel-running executors instead)",
                kernel.name()
            ),
        })
}

/// One cache-model sweep point as a [`KernelRun`]: the traced
/// computation's op count over the model's miss volume. The peak-memory
/// field reports the configured capacity (the model cache owns all of
/// `M`); both engines build points through here, so engine bit-identity
/// is structural.
fn capacity_run(n: usize, m: usize, comp_ops: u64, traffic: &[u64]) -> KernelRun {
    KernelRun {
        n,
        m,
        execution: Execution::new(
            CostProfile::with_levels(comp_ops, traffic),
            Words::new(m as u64),
        ),
    }
}

/// Measures the **cache-model** intensity curve `r(M) = C_comp /
/// misses(M)`: the kernel's canonical trace ([`Kernel::access_trace`])
/// replayed through a word-granular LRU of each sweep capacity. Emits
/// [`SweepResult`] / [`DataPoint`]s exactly like [`intensity_sweep`] —
/// same shapes, fitting and inversion machinery — but measures the
/// automatically-managed memory instead of the explicit decomposition
/// scheme (the E13 ablation's other half; the curves differ wherever LRU
/// falls short of the paper's blocking).
///
/// Under [`Engine::StackDist`] the whole sweep costs **one replay**:
/// Mattson stack-distance accounting answers every capacity from a single
/// histogram, bit-identically to the per-`M` [`Engine::Replay`] (pinned by
/// property test across the registry). Capacities of zero are skipped (a
/// cache needs a word); `cfg.verify` is ignored (a trace replay has no
/// numerics to verify).
///
/// # Errors
///
/// [`KernelError::BadParameters`] when the kernel has no canonical trace
/// at `cfg.n`.
pub fn capacity_sweep(kernel: &dyn Kernel, cfg: &SweepConfig) -> Result<SweepResult, KernelError> {
    hierarchy_capacity_sweep(kernel, cfg, &[])
}

/// [`capacity_sweep`] with the per-`M` replays fanned out over worker
/// threads ([`par_map`]) — meaningful for [`Engine::Replay`] only; the
/// one-pass engine is a single replay with nothing to fan out and runs
/// identically to the serial executor. Bit-identical points either way.
///
/// # Errors
///
/// As [`capacity_sweep`].
pub fn capacity_sweep_par(
    kernel: &dyn Kernel,
    cfg: &SweepConfig,
) -> Result<SweepResult, KernelError> {
    hierarchy_capacity_sweep_par(kernel, cfg, &[])
}

/// Capacities eligible for a capacity sweep: positive, and below the
/// first outer level so level 0 stays the smallest level of the ladder.
fn eligible_capacities(cfg: &SweepConfig, outer: &[LevelSpec]) -> Vec<usize> {
    let ceiling = outer
        .first()
        .map_or(u64::MAX, |level| level.capacity().get());
    cfg.memories
        .iter()
        .copied()
        .filter(|&m| m >= 1 && (m as u64) < ceiling)
        .collect()
}

/// The multi-level one-pass sweep: level 0's capacity sweeps over
/// `cfg.memories` under the fixed `outer` levels, **all levels
/// cache-managed** (the trace-driven configuration of
/// [`Hierarchy`]), each run carrying one traffic entry per
/// boundary. LRU inclusion makes every boundary's traffic exactly the
/// misses at that level's capacity, so [`Engine::StackDist`] reads the
/// whole ladder — and the whole sweep — off one histogram;
/// [`Engine::Replay`] replays the trace through an actual ladder per
/// point (bit-identical, pinned by property test).
///
/// # Errors
///
/// As [`capacity_sweep`], plus [`KernelError::BadParameters`] for a
/// malformed `outer` ladder.
pub fn hierarchy_capacity_sweep(
    kernel: &dyn Kernel,
    cfg: &SweepConfig,
    outer: &[LevelSpec],
) -> Result<SweepResult, KernelError> {
    validate_outer(outer)?;
    if needs_device_path(cfg, outer) {
        return device_capacity_points(kernel, cfg, outer, false);
    }
    let memories = eligible_capacities(cfg, outer);
    match cfg.engine {
        // A budgeted/checkpointed Replay routes through the profile path:
        // per-point cache replays have no resumable snapshot, and the
        // one-pass engine is bit-identical (the substitution is recorded
        // in the result's provenance).
        Engine::Replay if cfg.budget.is_none() && cfg.checkpoint.is_none() => collect_sweep(
            kernel,
            memories
                .iter()
                .map(|&m| capacity_point_replay(kernel, cfg, outer, m)),
        ),
        engine => capacity_points_profile(kernel, cfg, outer, &memories, engine),
    }
}

/// [`hierarchy_capacity_sweep`] with per-`M` replays on worker threads
/// (see [`capacity_sweep_par`]).
///
/// # Errors
///
/// As [`hierarchy_capacity_sweep`].
pub fn hierarchy_capacity_sweep_par(
    kernel: &dyn Kernel,
    cfg: &SweepConfig,
    outer: &[LevelSpec],
) -> Result<SweepResult, KernelError> {
    validate_outer(outer)?;
    if needs_device_path(cfg, outer) {
        return device_capacity_points(kernel, cfg, outer, true);
    }
    let memories = eligible_capacities(cfg, outer);
    match cfg.engine {
        Engine::Replay if cfg.budget.is_none() && cfg.checkpoint.is_none() => collect_sweep(
            kernel,
            par_map(&memories, |_, &m| {
                capacity_point_replay(kernel, cfg, outer, m)
            }),
        ),
        engine => capacity_points_profile(kernel, cfg, outer, &memories, engine),
    }
}

/// One replay-engine point: the canonical trace through an actual
/// one-level [`LruCache`] (flat) or [`Hierarchy`] ladder of capacity `m`
/// under the outer levels.
fn capacity_point_replay(
    kernel: &dyn Kernel,
    cfg: &SweepConfig,
    outer: &[LevelSpec],
    m: usize,
) -> Result<KernelRun, KernelError> {
    let trace = trace_for(kernel, cfg.n)?;
    let comp = trace.comp_ops();
    let traffic = if outer.is_empty() {
        let mut cache = LruCache::with_address_bound(m, 1, trace.addr_bound());
        vec![cache.run_trace(trace.into_addrs())]
    } else {
        let mut caps = vec![Words::new(m as u64)];
        caps.extend(outer.iter().map(|l| l.capacity()));
        let mut ladder = Hierarchy::new(&caps);
        ladder.run_trace(trace.into_addrs()).as_slice().to_vec()
    };
    Ok(capacity_run(cfg.n, m, comp, &traffic))
}

/// All profile-engine points from **one pass**: the reuse profile is
/// built once (serially, segmented-parallel, or sampled, per `engine`),
/// then every sweep capacity (and every outer boundary) is an O(1) read.
fn capacity_points_profile(
    kernel: &dyn Kernel,
    cfg: &SweepConfig,
    outer: &[LevelSpec],
    memories: &[usize],
    engine: Engine,
) -> Result<SweepResult, KernelError> {
    let (profile, provenance) = if cfg.budget.is_some() || cfg.checkpoint.is_some() {
        let no_faults = FaultPlan::none();
        let robust_cfg = cfg.clone().with_engine(engine);
        let (profile, prov) = robust_capacity_profile(kernel, &robust_cfg, &no_faults)?;
        (profile, Some(prov))
    } else {
        (capacity_profile(kernel, cfg.n, engine)?, None)
    };
    let comp = trace_for(kernel, cfg.n)?.comp_ops();
    let mut result = collect_sweep(
        kernel,
        memories.iter().map(|&m| {
            let mut traffic = vec![profile.misses_at(m as u64)];
            traffic.extend(outer.iter().map(|l| profile.misses_at(l.capacity().get())));
            Ok(capacity_run(cfg.n, m, comp, &traffic))
        }),
    )?;
    result.provenance = provenance;
    Ok(result)
}

/// Whether the address bound is worth a direct-indexed last-access table
/// (a flat `8 × bound`-byte allocation per engine/worker).
fn direct_bound(bound: u64) -> Option<u64> {
    (bound > 0 && bound < u64::from(u32::MAX / 2)).then_some(bound)
}

/// The line size a ladder level transfers under `model`: the level's own
/// explicit line size when it declares one, the sweep model's otherwise
/// (a default `line_words = 1` level *inherits* the model granularity —
/// an unannotated `--levels CAP:BW` entry should not silently demote a
/// line-granular sweep back to words).
fn effective_line(model: TrafficModel, level: &LevelSpec) -> u64 {
    if level.line_words() > 1 {
        level.line_words()
    } else {
        model.line_words
    }
}

/// The tagged access stream a device-real measurement replays: the
/// kernel's honest read/write tags when write-backs are ledgered, the
/// same addresses demoted to reads when only line granularity is priced
/// (no store ever dirties a line, so no write-back can be charged).
fn device_accesses(trace: AccessTrace, model: TrafficModel) -> Box<dyn Iterator<Item = Access>> {
    if model.writebacks {
        trace.into_accesses()
    } else {
        Box::new(trace.into_addrs().map(Access::read))
    }
}

/// One device-real sweep point as a [`KernelRun`]: dual-ledger traffic
/// (read words + write-back words per boundary) under the traced
/// computation's op count. The device counterpart of [`capacity_run`];
/// both engines build points through here, so engine bit-identity is
/// structural here too.
fn device_capacity_run(n: usize, m: usize, comp_ops: u64, reads: &[u64], wbs: &[u64]) -> KernelRun {
    KernelRun {
        n,
        m,
        execution: Execution::new(
            CostProfile::with_dual_levels(comp_ops, reads, wbs),
            Words::new(m as u64),
        ),
    }
}

/// The device-real capacity executor: every sweep under a non-trivial
/// [`TrafficModel`] routes here (the word-granular read-priced model
/// never does — its sweeps run the untouched exact paths bit for bit).
///
/// Engine gating, per tier:
///
/// * [`Engine::Replay`] replays the tagged trace through actual
///   line-granular dirty-bit LRU state per point (fanned out over
///   workers when `par`);
/// * [`Engine::StackDist`] answers the whole sweep from **one** tagged
///   replay via [`TrafficProfile`](balance_machine::TrafficProfile) —
///   bit-identical to the per-point replays (pinned by test);
/// * [`Engine::Analytic`]'s closed forms are word-granular read-priced
///   derivations, so the tier **declines** device-real models and the
///   one-pass tagged engine answers instead (exact, just not free);
/// * [`Engine::StackDistPar`] and [`Engine::Sampled`] are word-granular
///   machinery (segment merges and hash sampling carry no dirty state)
///   and are refused outright rather than silently mispriced.
///
/// Sweep capacities smaller than one line are skipped — a cache that
/// cannot hold a single line is not a capacity point.
///
/// # Errors
///
/// [`KernelError::BadParameters`] for a malformed line size, a refused
/// engine, a budget/checkpoint policy (the resumable drivers replay
/// untagged addresses — word-granular machinery), or a kernel without a
/// canonical trace at `cfg.n`.
fn device_capacity_points(
    kernel: &dyn Kernel,
    cfg: &SweepConfig,
    outer: &[LevelSpec],
    par: bool,
) -> Result<SweepResult, KernelError> {
    let model = cfg.traffic;
    model.validate()?;
    let bad = |reason: String| KernelError::BadParameters { reason };
    if cfg.budget.is_some() || cfg.checkpoint.is_some() {
        return Err(bad(format!(
            "budgets and checkpoints are word-granular machinery (the resumable replay \
             drivers stream untagged addresses); the device-real traffic model \
             (line_words = {}, writebacks = {}) runs unbudgeted",
            model.line_words, model.writebacks
        )));
    }
    let memories: Vec<usize> = eligible_capacities(cfg, outer)
        .into_iter()
        .filter(|&m| m as u64 >= model.line_words)
        .collect();
    match cfg.engine {
        Engine::StackDistPar { .. } | Engine::Sampled { .. } => Err(bad(format!(
            "engine {} is word-granular read-priced machinery; the device-real traffic \
             model (line_words = {}, writebacks = {}) needs `replay` or `stackdist`",
            engine_spec(cfg.engine),
            model.line_words,
            model.writebacks
        ))),
        Engine::Replay if par => collect_sweep(
            kernel,
            par_map(&memories, |_, &m| device_point_replay(kernel, cfg, outer, m)),
        ),
        Engine::Replay => collect_sweep(
            kernel,
            memories
                .iter()
                .map(|&m| device_point_replay(kernel, cfg, outer, m)),
        ),
        Engine::StackDist | Engine::Analytic => device_points_profile(kernel, cfg, outer, &memories),
    }
}

/// One device-real replay point: the tagged trace through actual
/// line-granular dirty-bit LRU state of capacity `m` (a flat
/// [`LruCache`] on the direct-indexed backend, or a
/// [`Hierarchy::from_spec_device`] ladder under outer levels, each level
/// at its [`effective_line`] size).
fn device_point_replay(
    kernel: &dyn Kernel,
    cfg: &SweepConfig,
    outer: &[LevelSpec],
    m: usize,
) -> Result<KernelRun, KernelError> {
    let model = cfg.traffic;
    let lw = model.line_words;
    let trace = trace_for(kernel, cfg.n)?;
    let comp = trace.comp_ops();
    let bound = trace.addr_bound();
    if outer.is_empty() {
        let lines = usize::try_from(m as u64 / lw)
            .unwrap_or_else(|_| panic!("capacity {m} overflows the line count"));
        let mut cache = LruCache::with_address_bound(lines, lw, bound);
        let _ = cache.run_tagged_trace(device_accesses(trace, model));
        return Ok(device_capacity_run(
            cfg.n,
            m,
            comp,
            &[cache.miss_words()],
            &[cache.writeback_words()],
        ));
    }
    let bad = |e: &dyn core::fmt::Display| KernelError::BadParameters {
        reason: format!("sweep point M = {m}: {e}"),
    };
    let local = LevelSpec::new(Words::new(m as u64), WordsPerSec::new(1.0))
        .and_then(|l| l.with_line_words(lw))
        .map_err(|e| bad(&e))?;
    let mut levels = vec![local];
    for level in outer {
        levels.push(
            level
                .with_line_words(effective_line(model, level))
                .map_err(|e| bad(&e))?,
        );
    }
    let spec = HierarchySpec::new(levels).map_err(|e| bad(&e))?;
    let mut ladder = Hierarchy::from_spec_device(&spec);
    let traffic = ladder.run_tagged_trace(device_accesses(trace, model));
    let depth = traffic.len();
    let reads: Vec<u64> = (0..depth).map(|i| traffic.read_at(i).unwrap_or(0)).collect();
    let wbs: Vec<u64> = (0..depth)
        .map(|i| traffic.writeback_at(i).unwrap_or(0))
        .collect();
    Ok(device_capacity_run(cfg.n, m, comp, &reads, &wbs))
}

/// All device-real profile points from **one** tagged replay: a
/// [`TrafficProfile`](balance_machine::TrafficProfile) answers every
/// capacity's read misses and write-backs in O(1).
///
/// The one-pass read is only sound at a **uniform** line size: LRU
/// inclusion (the Mattson stack property the whole-ladder read rests on)
/// holds level-to-level only when every level tracks the same lines, so
/// a mixed-line ladder is refused here and needs [`Engine::Replay`].
fn device_points_profile(
    kernel: &dyn Kernel,
    cfg: &SweepConfig,
    outer: &[LevelSpec],
    memories: &[usize],
) -> Result<SweepResult, KernelError> {
    let model = cfg.traffic;
    for level in outer {
        let eff = effective_line(model, level);
        if eff != model.line_words {
            return Err(KernelError::BadParameters {
                reason: format!(
                    "the one-pass tagged engine needs a uniform line size across the \
                     ladder (sweep model {} words, outer level {} words); use engine \
                     `replay` for mixed-line ladders",
                    model.line_words, eff
                ),
            });
        }
    }
    let trace = trace_for(kernel, cfg.n)?;
    let comp = trace.comp_ops();
    let bound = trace.addr_bound();
    let accesses = device_accesses(trace, model);
    let tp = match direct_bound(bound) {
        Some(b) => StackDistance::traffic_profile_of_bounded(accesses, model.line_words, b),
        None => StackDistance::traffic_profile_of(accesses, model.line_words),
    };
    collect_sweep(
        kernel,
        memories.iter().map(|&m| {
            let capacities =
                std::iter::once(m as u64).chain(outer.iter().map(|l| l.capacity().get()));
            let (reads, wbs): (Vec<u64>, Vec<u64>) = capacities
                .map(|c| (tp.read_words_at(c), tp.writeback_words_at(c)))
                .unzip();
            Ok(device_capacity_run(cfg.n, m, comp, &reads, &wbs))
        }),
    )
}

/// Builds the kernel's [`CapacityProfile`] on the requested profile
/// engine ([`Engine::Replay`] has no profile and is rejected by the
/// callers' dispatch).
///
/// # Errors
///
/// [`KernelError::BadParameters`] when the kernel has no canonical trace
/// at `n`.
fn capacity_profile(
    kernel: &dyn Kernel,
    n: usize,
    engine: Engine,
) -> Result<CapacityProfile, KernelError> {
    if engine == Engine::Analytic {
        return kernel
            .analytic_profile(n)
            .map(balance_machine::AnalyticProfile::into_profile)
            .ok_or_else(|| KernelError::BadParameters {
                reason: format!(
                    "kernel {} derives no analytic profile at n = {n}; \
                     use a replay engine (stackdist, stackdist-par, sampled)",
                    kernel.name()
                ),
            });
    }
    let trace = trace_for(kernel, n)?;
    let bound = trace.addr_bound();
    Ok(match engine {
        Engine::Analytic => unreachable!("handled by the early return above"),
        Engine::Replay | Engine::StackDist => match direct_bound(bound) {
            Some(b) => StackDistance::profile_of_bounded(trace.into_addrs(), b),
            None => StackDistance::profile_of(trace.into_addrs()),
        },
        Engine::Sampled { shift } => match direct_bound(bound) {
            Some(b) => sampled_profile_of_bounded(trace.into_addrs(), b, shift),
            None => sampled_profile_of(trace.into_addrs(), shift),
        },
        Engine::StackDistPar { threads } => {
            let len = trace.len();
            drop(trace);
            // Each worker regenerates its time range from the kernel's
            // streaming generator: `skip` is O(1) for generators with a
            // positional `nth` (e.g. the matmul trace) and one cheap
            // linear scan otherwise.
            segmented_profile_of(len, direct_bound(bound), resolve_threads(threads), |start, end| {
                segment_range(kernel, n, start, end)
            })
        }
    })
}

/// Resolves a [`Engine::StackDistPar`] thread count (`0` = the host's
/// available parallelism).
fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        threads
    }
}

/// The kernel's canonical address stream, for callers that have already
/// proven the trace exists at this size (via [`trace_for`]).
///
/// # Panics
///
/// Panics if the kernel refuses to produce the trace it just produced —
/// a broken [`Kernel::access_trace`] contract, not an input condition.
fn kernel_addrs(kernel: &dyn Kernel, n: usize) -> impl Iterator<Item = u64> + Send {
    trace_for(kernel, n)
        .unwrap_or_else(|e| panic!("trace_for succeeded above: {e}"))
        .into_addrs()
}

/// One segment worker's slice of the kernel's canonical trace,
/// regenerated from the streaming generator.
///
/// # Panics
///
/// As [`kernel_addrs`], or when a trace position overflows `usize`.
fn segment_range(kernel: &dyn Kernel, n: usize, start: u64, end: u64) -> impl Iterator<Item = u64> {
    let start =
        usize::try_from(start).unwrap_or_else(|_| panic!("trace position {start} overflows usize"));
    let end =
        usize::try_from(end).unwrap_or_else(|_| panic!("trace position {end} overflows usize"));
    kernel_addrs(kernel, n).skip(start).take(end - start)
}

/// Sampling-rate exponent step between successive rungs of the
/// degradation ladder (the first sampled rung runs at rate `2^-4`).
const LADDER_SHIFT_STEP: u32 = 4;

/// How often the sampled rung polls its wall-clock deadline (the exact
/// rungs poll inside [`resumable_replay`] at the same cadence).
const SAMPLED_DEADLINE_POLL: u64 = 1 << 20;

/// Planning estimate of one-pass engine state per tracked address:
/// last-access slot + recency-stack entry + marker/Fenwick bits, rounded
/// up. Used only to *pre-trip* [`Budget::max_resident_bytes`] before
/// allocating — a sizing model, not an rlimit.
const TRACKED_ADDRESS_BYTES: u64 = 32;

/// The next (cheaper, eventually approximate) rung below `engine` on the
/// degradation ladder, or `None` at the floor:
///
/// ```text
/// stackdist-par:K → stackdist → sampled:4 → sampled:8 → … → sampled:32
/// ```
///
/// `Replay` enters at `stackdist`, its bit-identical one-pass
/// equivalent. Every estimate ([`Budget::max_resident_bytes`],
/// [`Budget::max_addresses`]) is monotone non-increasing down the
/// ladder, so one downward pass settles all pre-checks.
fn next_rung(engine: Engine) -> Option<Engine> {
    match engine {
        // Analytic never enters the ladder (it is free and cannot trip a
        // budget — see `robust_capacity_profile`); its nominal next exact
        // tier keeps the ladder total.
        Engine::Analytic | Engine::Replay | Engine::StackDistPar { .. } => Some(Engine::StackDist),
        Engine::StackDist => Some(Engine::Sampled {
            shift: LADDER_SHIFT_STEP,
        }),
        Engine::Sampled { shift } if shift < MAX_SAMPLE_SHIFT => Some(Engine::Sampled {
            shift: (shift + LADDER_SHIFT_STEP).min(MAX_SAMPLE_SHIFT),
        }),
        Engine::Sampled { .. } => None,
    }
}

/// Order-of-magnitude estimate of `engine`'s resident state for a trace
/// of `len` addresses drawn from `bound` distinct ones (`len` stands in
/// when the bound is unknown): [`TRACKED_ADDRESS_BYTES`] per address the
/// inner exact engine must track, per concurrent worker. The sampled
/// rungs use the hash-indexed backend, which tracks only the expected
/// `bound · 2^-shift` sampled addresses — that is what makes them
/// genuinely cheaper, not just faster.
fn estimated_resident_bytes(engine: Engine, bound: u64, len: u64) -> u64 {
    let tracked = if bound > 0 { bound } else { len };
    let (per_worker, workers) = match engine {
        // A finalized analytic histogram is O(#classes) — noise next to
        // any per-address table.
        Engine::Analytic => (0, 1),
        Engine::Replay | Engine::StackDist => (tracked, 1),
        Engine::StackDistPar { threads } => (tracked, resolve_threads(threads)),
        Engine::Sampled { shift } => ((tracked >> shift).max(1), 1),
    };
    per_worker
        .saturating_mul(TRACKED_ADDRESS_BYTES)
        .saturating_mul(workers as u64)
}

/// Addresses the inner exact engine processes — the quantity
/// [`Budget::max_addresses`] bounds: the full trace for exact rungs, the
/// expected hash-sampled subset (`len · 2^-shift`) for sampled rungs.
fn engine_address_cost(engine: Engine, len: u64) -> u64 {
    match engine {
        Engine::Analytic => 0,
        Engine::Sampled { shift } => len >> shift,
        _ => len,
    }
}

/// The budget limit `engine` would violate before running, if any.
/// Resident and address limits are estimate-checked up front; the wall
/// limit can only trip *during* a replay.
fn pre_trip(engine: Engine, budget: &Budget, bound: u64, len: u64) -> Option<BudgetTrip> {
    if let Some(limit) = budget.max_resident_bytes {
        let estimated = estimated_resident_bytes(engine, bound, len);
        if estimated > limit {
            return Some(BudgetTrip::Resident { estimated, limit });
        }
    }
    if let Some(limit) = budget.max_addresses {
        let needed = engine_address_cost(engine, len);
        if needed > limit {
            return Some(BudgetTrip::Addresses { needed, limit });
        }
    }
    None
}

/// The CLI spelling of an engine (`replay`, `stackdist`,
/// `stackdist-par:K`, `sampled:S`) — used by provenance lines and
/// diagnostics.
#[must_use]
pub fn engine_spec(engine: Engine) -> String {
    match engine {
        Engine::Replay => "replay".into(),
        Engine::StackDist => "stackdist".into(),
        Engine::StackDistPar { threads } => format!("stackdist-par:{threads}"),
        Engine::Sampled { shift } => format!("sampled:{shift}"),
        Engine::Analytic => "analytic".into(),
    }
}

/// One rung-to-rung substitution a budgeted measurement made, and the
/// tripped limit that forced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradationStep {
    /// The engine that was abandoned.
    pub from: Engine,
    /// The cheaper engine substituted for it.
    pub to: Engine,
    /// The budget limit that tripped.
    pub trip: BudgetTrip,
}

impl core::fmt::Display for DegradationStep {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} -> {}: {}",
            engine_spec(self.from),
            engine_spec(self.to),
            self.trip
        )
    }
}

/// How a robust capacity measurement was actually obtained — the honest
/// companion to a profile that may not come from the engine the caller
/// asked for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Provenance {
    /// The engine the caller requested.
    pub requested: Engine,
    /// The engine that produced the returned profile.
    pub used: Engine,
    /// Every budget-forced substitution, in the order taken (empty when
    /// the requested engine ran within budget).
    pub steps: Vec<DegradationStep>,
    /// `Some(pos)` when the serial replay resumed from a checkpoint at
    /// trace position `pos` instead of starting fresh.
    pub resumed_at: Option<u64>,
    /// Segment workers that resumed from persisted images (segmented
    /// engine only).
    pub resumed_segments: usize,
    /// Dead segment workers that were re-run within the bounded retry.
    pub segment_retries: u64,
    /// Checkpoints persisted while building the profile.
    pub checkpoints_written: u64,
}

impl Provenance {
    /// Whether a budget trip forced a cheaper engine than requested.
    #[must_use]
    pub fn degraded(&self) -> bool {
        !self.steps.is_empty()
    }

    /// One-line human summary for CLI/report output, e.g. `degraded
    /// stackdist -> sampled:4 (estimated resident 96000000 B exceeds the
    /// 64000000 B budget); wrote 3 checkpoint(s)`.
    #[must_use]
    pub fn describe(&self) -> String {
        let mut line = if let Some(last) = self.steps.last() {
            let path: Vec<String> = std::iter::once(engine_spec(self.steps[0].from))
                .chain(self.steps.iter().map(|s| engine_spec(s.to)))
                .collect();
            format!("degraded {} ({})", path.join(" -> "), last.trip)
        } else if self.used == self.requested {
            format!("as requested ({})", engine_spec(self.used))
        } else {
            format!(
                "substituted bit-identical {} for {}",
                engine_spec(self.used),
                engine_spec(self.requested)
            )
        };
        if let Some(pos) = self.resumed_at {
            line.push_str(&format!("; resumed at address {pos}"));
        }
        if self.resumed_segments > 0 {
            line.push_str(&format!("; resumed {} segment(s)", self.resumed_segments));
        }
        if self.segment_retries > 0 {
            line.push_str(&format!(
                "; retried {} dead segment worker(s)",
                self.segment_retries
            ));
        }
        if self.checkpoints_written > 0 {
            line.push_str(&format!(
                "; wrote {} checkpoint(s)",
                self.checkpoints_written
            ));
        }
        line
    }
}

/// Durability counters from one ladder-rung attempt.
#[derive(Debug, Default, Clone, Copy)]
struct AttemptStats {
    resumed_at: Option<u64>,
    resumed_segments: usize,
    segment_retries: u64,
    checkpoints_written: u64,
}

/// The serial replay's checkpoint-image name: one image per
/// (kernel, size), so interleaved sweeps in one directory cannot resume
/// from each other's state.
fn checkpoint_name(kernel: &dyn Kernel, n: usize) -> String {
    format!("{}_n{n}", kernel.name())
}

/// One ladder rung's attempt at the profile. Exact rungs run through the
/// resumable (checkpointed, deadline-polled, fault-checked) replay
/// drivers; sampled rungs stream through [`SampledStackDistance`] on the
/// hash-indexed backend with the same deadline/fault cadence (sampled
/// state is small enough that checkpointing it is not worth the I/O).
fn run_profile_attempt(
    kernel: &dyn Kernel,
    cfg: &SweepConfig,
    engine: Engine,
    bound: u64,
    len: u64,
    deadline: Option<Instant>,
    faults: &FaultPlan,
) -> Result<(CapacityProfile, AttemptStats), ReplayInterrupt> {
    match engine {
        Engine::Replay => unreachable!("replay is mapped to stackdist before the ladder"),
        Engine::Analytic => unreachable!("analytic profiles are built before the ladder"),
        Engine::StackDist => {
            let name = checkpoint_name(kernel, cfg.n);
            let mut ctl = ReplayControl::new(&name);
            ctl.policy = cfg.checkpoint.as_ref();
            ctl.faults = faults;
            ctl.deadline = deadline;
            let fresh = || match direct_bound(bound) {
                Some(b) => StackDistance::with_address_bound(b),
                None => StackDistance::new(),
            };
            let (eng, stats) = resumable_replay(len, kernel_addrs(kernel, cfg.n), fresh, &ctl)?;
            Ok((
                eng.into_profile(),
                AttemptStats {
                    resumed_at: stats.resumed_at,
                    checkpoints_written: stats.checkpoints_written,
                    ..AttemptStats::default()
                },
            ))
        }
        Engine::StackDistPar { threads } => {
            let (profile, stats) = segmented_profile_resumable(
                len,
                direct_bound(bound),
                resolve_threads(threads),
                |start, end| segment_range(kernel, cfg.n, start, end),
                cfg.checkpoint.as_ref(),
                faults,
                deadline,
            )?;
            Ok((
                profile,
                AttemptStats {
                    resumed_segments: stats.resumed_segments,
                    segment_retries: stats.segment_retries,
                    checkpoints_written: stats.checkpoints_written,
                    ..AttemptStats::default()
                },
            ))
        }
        Engine::Sampled { shift } => {
            let mut eng = SampledStackDistance::new(shift);
            let armed = faults.is_armed();
            let mut until_poll = SAMPLED_DEADLINE_POLL;
            for (pos, addr) in kernel_addrs(kernel, cfg.n).enumerate() {
                if armed {
                    faults.check_observe(pos as u64)?;
                }
                eng.observe(addr);
                until_poll -= 1;
                if until_poll == 0 {
                    until_poll = SAMPLED_DEADLINE_POLL;
                    if let Some(dl) = deadline {
                        if Instant::now() >= dl {
                            return Err(ReplayInterrupt::DeadlineExceeded);
                        }
                    }
                }
            }
            Ok((eng.into_profile(), AttemptStats::default()))
        }
    }
}

/// Builds the kernel's [`CapacityProfile`] under [`SweepConfig::budget`]
/// and [`SweepConfig::checkpoint`], degrading along the engine ladder
/// instead of aborting, and reporting exactly how the profile was
/// obtained.
///
/// The ladder (see [`next_rung`] in this module): segmented-parallel →
/// serial one-pass → SHARDS sampling at rate `2^-4`, then coarser powers
/// down to `2^-32`. Resident-memory and address limits are pre-checked
/// from sizing estimates before an attempt is paid for; the wall limit
/// arms a deadline polled during the replay, and a rung that runs out of
/// time checkpoints its progress first (when a policy is armed). The
/// floor rung runs without a deadline — a late answer beats none.
///
/// Exactness is never traded silently: every sampled rung's profile
/// reports [`CapacityProfile::is_exact`]` == false` (so exact-only
/// consumers keep refusing it), and the returned [`Provenance`] lists
/// each substitution with the limit that forced it.
///
/// `faults` is the deterministic fault-injection schedule; pass
/// [`FaultPlan::none`] outside harness runs.
///
/// # Errors
///
/// [`KernelError::BadParameters`] when the kernel has no canonical trace
/// at `cfg.n`; [`KernelError::BudgetExhausted`] when even the floor
/// rung's estimate exceeds a limit; [`KernelError::Interrupted`] when an
/// injected fault or a checkpoint-persistence failure stops the replay.
pub fn robust_capacity_profile(
    kernel: &dyn Kernel,
    cfg: &SweepConfig,
    faults: &FaultPlan,
) -> Result<(CapacityProfile, Provenance), KernelError> {
    // The analytic tier replays nothing, holds no per-address state, and
    // finishes in microseconds: no budget can trip and there is nothing
    // to checkpoint, so it bypasses the ladder entirely. A kernel without
    // a derivation errors here rather than degrading — the caller asked
    // for exact-and-free specifically.
    if cfg.engine == Engine::Analytic {
        let profile = capacity_profile(kernel, cfg.n, Engine::Analytic)?;
        return Ok((
            profile,
            Provenance {
                requested: Engine::Analytic,
                used: Engine::Analytic,
                steps: Vec::new(),
                resumed_at: None,
                resumed_segments: 0,
                segment_retries: 0,
                checkpoints_written: 0,
            },
        ));
    }
    let probe = trace_for(kernel, cfg.n)?;
    let len = probe.len();
    let bound = probe.addr_bound();
    drop(probe);
    let budget = cfg.budget.unwrap_or_default();
    let deadline = budget.max_wall.map(|w| Instant::now() + w);

    let requested = cfg.engine;
    // Replay has no one-pass state to checkpoint; its bit-identical
    // one-pass equivalent enters the ladder in its place (recorded as
    // `used`, with no degradation step — the numbers are identical).
    let mut engine = match requested {
        Engine::Replay => Engine::StackDist,
        other => other,
    };
    let mut steps: Vec<DegradationStep> = Vec::new();

    // Settle the estimate-checkable limits before paying for a doomed
    // attempt. Estimates are monotone down the ladder, so this loop and
    // the wall-trip degradations below never need to re-check.
    while let Some(trip) = pre_trip(engine, &budget, bound, len) {
        let Some(next) = next_rung(engine) else {
            return Err(KernelError::BudgetExhausted {
                reason: format!("{trip} even on the floor engine {}", engine_spec(engine)),
            });
        };
        steps.push(DegradationStep {
            from: engine,
            to: next,
            trip,
        });
        engine = next;
    }

    let mut total = AttemptStats::default();
    loop {
        let floor = next_rung(engine).is_none();
        let attempt_deadline = if floor { None } else { deadline };
        match run_profile_attempt(kernel, cfg, engine, bound, len, attempt_deadline, faults) {
            Ok((profile, stats)) => {
                total.resumed_at = total.resumed_at.or(stats.resumed_at);
                total.resumed_segments += stats.resumed_segments;
                total.segment_retries += stats.segment_retries;
                total.checkpoints_written += stats.checkpoints_written;
                return Ok((
                    profile,
                    Provenance {
                        requested,
                        used: engine,
                        steps,
                        resumed_at: total.resumed_at,
                        resumed_segments: total.resumed_segments,
                        segment_retries: total.segment_retries,
                        checkpoints_written: total.checkpoints_written,
                    },
                ));
            }
            Err(ReplayInterrupt::DeadlineExceeded) => {
                let limit = budget.max_wall.unwrap_or_default();
                let Some(next) = next_rung(engine) else {
                    unreachable!("the floor rung runs without a deadline")
                };
                steps.push(DegradationStep {
                    from: engine,
                    to: next,
                    trip: BudgetTrip::Wall { limit },
                });
                engine = next;
            }
            Err(other) => {
                return Err(KernelError::Interrupted {
                    reason: other.to_string(),
                })
            }
        }
    }
}

/// Applies `f` to every item of `items` on a scoped thread pool sized by
/// `std::thread::available_parallelism`, returning outputs **in input
/// order**. `f` receives `(index, &item)`.
///
/// This is the repo's only parallel primitive (rayon is unavailable
/// offline): an atomic cursor feeds indices to workers, each worker
/// accumulates `(index, output)` pairs, and the merged result is sorted by
/// index — deterministic regardless of thread scheduling. With one core
/// (or one item) it runs inline on the caller's thread.
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, U)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else {
                            return local;
                        };
                        local.push((i, f(i, item)));
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| match h.join() {
                Ok(local) => local,
                // Re-raise with the original payload so callers' panic
                // messages (kernel name, size, error) survive the hop.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    indexed.sort_unstable_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, u)| u).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::MatMul;
    use crate::matvec::MatVec;
    use balance_core::fit::FittedLaw;
    use balance_core::GrowthLaw;

    #[test]
    fn pow2_config() {
        let cfg = SweepConfig::pow2(10, 4, 7, 1);
        assert_eq!(cfg.memories, vec![16, 32, 64, 128]);
        assert_eq!(cfg.verify, Verify::Full);
    }

    #[test]
    fn matmul_sweep_fits_sqrt_law() {
        let cfg = SweepConfig::pow2(48, 5, 11, 42);
        let result = intensity_sweep(&MatMul, &cfg).unwrap();
        assert!(result.points.len() >= 6);
        let fit = result.fit().unwrap();
        match fit.best {
            FittedLaw::Power { exponent, .. } => {
                assert!((exponent - 0.5).abs() < 0.12, "fitted exponent {exponent}");
            }
            other => panic!("expected power law, got {other}"),
        }
    }

    #[test]
    fn matvec_sweep_fits_constant_law() {
        let cfg = SweepConfig::pow2(64, 5, 12, 42);
        let result = intensity_sweep(&MatVec, &cfg).unwrap();
        let fit = result.fit().unwrap();
        assert_eq!(
            fit.best.growth_law(),
            GrowthLaw::Impossible,
            "got {}",
            fit.best
        );
    }

    #[test]
    fn sweep_skips_too_small_memories() {
        let cfg = SweepConfig {
            n: 16,
            memories: vec![1, 2, 64],
            seed: 0,
            verify: Verify::Full,
            engine: Engine::Replay,
            ..SweepConfig::default()
        };
        let result = intensity_sweep(&MatMul, &cfg).unwrap();
        assert_eq!(result.points.len(), 1);
    }

    #[test]
    fn curve_supports_empirical_rebalance() {
        let cfg = SweepConfig::pow2(48, 5, 11, 7);
        let result = intensity_sweep(&MatMul, &cfg).unwrap();
        let curve = result.curve().unwrap();
        // alpha = 2 on sqrt-law data: memory should grow ~4x.
        let m_new = curve.empirical_rebalance(2.0, 256.0).unwrap();
        let factor = m_new / 256.0;
        assert!(
            (2.5..6.5).contains(&factor),
            "empirical growth factor {factor}"
        );
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        for verify in [Verify::Full, Verify::Freivalds { rounds: 2 }] {
            let cfg = SweepConfig::pow2(32, 5, 10, 9).with_verify(verify);
            let serial = intensity_sweep(&MatMul, &cfg).unwrap();
            let par = intensity_sweep_par(&MatMul, &cfg).unwrap();
            assert_eq!(serial.points.len(), par.points.len());
            for (s, p) in serial.points.iter().zip(&par.points) {
                assert_eq!(s.memory.to_bits(), p.memory.to_bits());
                assert_eq!(s.ratio.to_bits(), p.ratio.to_bits());
            }
            assert_eq!(serial.runs, par.runs);
        }
    }

    #[test]
    fn freivalds_sweep_matches_full_sweep_measurements() {
        // Verification mode must not change what is measured, only how the
        // output is checked.
        let base = SweepConfig::pow2(48, 5, 9, 4);
        let full = intensity_sweep(&MatMul, &base).unwrap();
        let cheap = intensity_sweep(
            &MatMul,
            &base.clone().with_verify(Verify::Freivalds { rounds: 1 }),
        )
        .unwrap();
        assert_eq!(full.runs, cheap.runs);
    }

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<usize> = (0..257).collect();
        let out = par_map(&items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        assert_eq!(par_map::<usize, usize, _>(&[], |_, &x| x), Vec::<usize>::new());
    }

    /// A kernel that fails at every memory size, each failure naming its
    /// `m` — lets the tests observe *which* error an executor surfaces.
    #[derive(Debug)]
    struct AlwaysFails;

    impl Kernel for AlwaysFails {
        fn name(&self) -> &'static str {
            "always-fails"
        }
        fn description(&self) -> &'static str {
            "test kernel: every run fails, tagged with its m"
        }
        fn intensity_model(&self) -> balance_core::IntensityModel {
            balance_core::IntensityModel::constant(1.0)
        }
        fn analytic_cost(&self, _n: usize, _m: usize) -> balance_core::CostProfile {
            balance_core::CostProfile::new(0, 0)
        }
        fn min_memory(&self, _n: usize) -> usize {
            4
        }
        fn run_on(
            &self,
            _n: usize,
            machine: &HierarchySpec,
            _seed: u64,
            _verify: Verify,
        ) -> Result<KernelRun, KernelError> {
            Err(KernelError::BadParameters {
                reason: format!("injected failure at m={}", machine.local_capacity_words()),
            })
        }
    }

    #[test]
    fn both_executors_report_the_first_error_in_sweep_order() {
        let cfg = SweepConfig {
            n: 8,
            memories: vec![1, 64, 16, 256], // 1 skipped (< min_memory)
            seed: 0,
            verify: Verify::Full,
            engine: Engine::Replay,
            ..SweepConfig::default()
        };
        for result in [
            intensity_sweep(&AlwaysFails, &cfg),
            intensity_sweep_par(&AlwaysFails, &cfg),
        ] {
            match result {
                Err(KernelError::BadParameters { reason }) => {
                    // First *eligible* point in sweep order, not the
                    // smallest m and not whichever worker finished first.
                    assert_eq!(reason, "injected failure at m=64");
                }
                other => panic!("expected the m=64 failure, got {other:?}"),
            }
        }
    }

    #[test]
    fn sweep_with_only_ineligible_memories_is_empty_ok() {
        let cfg = SweepConfig {
            n: 8,
            memories: vec![1, 2], // both below MatMul::min_memory
            seed: 0,
            verify: Verify::Full,
            engine: Engine::Replay,
            ..SweepConfig::default()
        };
        let result = intensity_sweep_par(&MatMul, &cfg).unwrap();
        assert!(result.points.is_empty());
    }

    fn outer_levels(caps: &[u64]) -> Vec<LevelSpec> {
        caps.iter()
            .map(|&c| LevelSpec::new(Words::new(c), WordsPerSec::new(1.0)).unwrap())
            .collect()
    }

    #[test]
    fn hierarchy_sweep_with_no_outer_levels_is_intensity_sweep() {
        let cfg = SweepConfig::pow2(32, 5, 9, 11);
        let flat = intensity_sweep(&MatMul, &cfg).unwrap();
        let hier = hierarchy_sweep(&MatMul, &cfg, &[]).unwrap();
        assert_eq!(flat.runs, hier.runs);
    }

    #[test]
    fn hierarchy_sweep_reports_inclusive_per_level_traffic() {
        let cfg = SweepConfig::pow2(24, 5, 8, 3);
        let outer = outer_levels(&[1024, 4096]);
        let result = hierarchy_sweep(&MatMul, &cfg, &outer).unwrap();
        assert!(!result.runs.is_empty());
        for run in &result.runs {
            assert_eq!(run.execution.cost.level_count(), 3, "m = {}", run.m);
            assert!(
                run.execution.cost.traffic().is_monotone_non_increasing(),
                "m = {}: {}",
                run.m,
                run.execution.cost.traffic()
            );
        }
    }

    #[test]
    fn hierarchy_sweep_port_traffic_matches_flat_sweep() {
        // The outer levels only observe; the PE-port measurement (and thus
        // every DataPoint) is identical to the flat sweep.
        let cfg = SweepConfig::pow2(24, 5, 8, 3);
        let flat = intensity_sweep(&MatMul, &cfg).unwrap();
        let hier = hierarchy_sweep(&MatMul, &cfg, &outer_levels(&[4096])).unwrap();
        assert_eq!(flat.points.len(), hier.points.len());
        for (f, h) in flat.points.iter().zip(&hier.points) {
            assert_eq!(f.memory.to_bits(), h.memory.to_bits());
            assert_eq!(f.ratio.to_bits(), h.ratio.to_bits());
        }
    }

    #[test]
    fn hierarchy_sweep_par_is_bit_identical_to_serial() {
        let cfg = SweepConfig::pow2(24, 5, 9, 5);
        let outer = outer_levels(&[2048]);
        let serial = hierarchy_sweep(&MatMul, &cfg, &outer).unwrap();
        let par = hierarchy_sweep_par(&MatMul, &cfg, &outer).unwrap();
        assert_eq!(serial.runs, par.runs);
    }

    #[test]
    fn hierarchy_sweep_skips_memories_at_or_above_first_outer_capacity() {
        let cfg = SweepConfig {
            n: 16,
            memories: vec![16, 64, 128, 256],
            seed: 0,
            verify: Verify::Full,
            engine: Engine::Replay,
            ..SweepConfig::default()
        };
        let result = hierarchy_sweep(&MatMul, &cfg, &outer_levels(&[128])).unwrap();
        let ms: Vec<usize> = result.runs.iter().map(|r| r.m).collect();
        assert_eq!(ms, vec![16, 64]);
    }

    #[test]
    fn capacity_sweep_engines_are_bit_identical() {
        let cfg = SweepConfig {
            n: 12,
            memories: vec![4, 16, 64, 256, 1024, 4096],
            seed: 0,
            verify: Verify::Full,
            engine: Engine::Replay,
            ..SweepConfig::default()
        };
        let replay = capacity_sweep(&MatMul, &cfg).unwrap();
        let onepass =
            capacity_sweep(&MatMul, &cfg.clone().with_engine(Engine::StackDist)).unwrap();
        assert_eq!(replay.runs, onepass.runs);
        assert_eq!(replay.points.len(), 6);
        for (r, o) in replay.points.iter().zip(&onepass.points) {
            assert_eq!(r.memory.to_bits(), o.memory.to_bits());
            assert_eq!(r.ratio.to_bits(), o.ratio.to_bits());
        }
        // The parallel executor matches both.
        let par = capacity_sweep_par(&MatMul, &cfg).unwrap();
        assert_eq!(replay.runs, par.runs);
        // The segmented parallel engine is bit-identical too, at any
        // thread count (including auto and absurd oversubscription).
        for threads in [0usize, 1, 3, 7, 64] {
            let seg = capacity_sweep(
                &MatMul,
                &cfg.clone().with_engine(Engine::StackDistPar { threads }),
            )
            .unwrap();
            assert_eq!(replay.runs, seg.runs, "threads = {threads}");
        }
        // Sampling at shift 0 keeps every address: exact degenerate.
        let sampled =
            capacity_sweep(&MatMul, &cfg.clone().with_engine(Engine::Sampled { shift: 0 }))
                .unwrap();
        assert_eq!(replay.runs, sampled.runs);
    }

    #[test]
    fn sampled_engine_tracks_the_exact_curve() {
        let cfg = SweepConfig {
            n: 16,
            memories: vec![16, 64, 256, 1024],
            seed: 0,
            verify: Verify::Full,
            engine: Engine::StackDist,
            ..SweepConfig::default()
        };
        let exact = capacity_sweep(&MatMul, &cfg).unwrap();
        let sampled =
            capacity_sweep(&MatMul, &cfg.clone().with_engine(Engine::Sampled { shift: 2 }))
                .unwrap();
        assert_eq!(exact.runs.len(), sampled.runs.len());
        let total = 3u64 * 16 * 16 * 16;
        for (e, s) in exact.runs.iter().zip(&sampled.runs) {
            // Miss-ratio error at rate 1/4 on the dense matmul trace
            // stays small (empirical bound with wide slack).
            let diff = e.execution.cost.io_words().abs_diff(s.execution.cost.io_words());
            assert!(
                (diff as f64) / (total as f64) < 0.2,
                "m = {}: exact {} vs sampled {}",
                e.m,
                e.execution.cost.io_words(),
                s.execution.cost.io_words()
            );
        }
    }

    #[test]
    fn engine_auto_for_escalates_on_trace_length() {
        assert_eq!(Engine::auto_for(8, 1 << 20), Engine::StackDist);
        assert_eq!(
            Engine::auto_for(8, AUTO_SEGMENT_LEN),
            Engine::StackDistPar { threads: 0 }
        );
        // Few points: replay stays cheapest regardless of length.
        assert_eq!(Engine::auto_for(2, 1 << 40), Engine::Replay);
    }

    #[test]
    fn engine_auto_for_kernel_grows_the_analytic_tier() {
        // Kernels with a derived histogram get it at any point count —
        // exact and free beats everything.
        assert_eq!(Engine::auto_for_kernel(16, &MatMul, 8), Engine::Analytic);
        assert_eq!(Engine::auto_for_kernel(2, &MatMul, 8), Engine::Analytic);
        // Without one (fft), selection falls back to the trace-length
        // escalation...
        assert_eq!(
            Engine::auto_for_kernel(16, &crate::fft::Fft, 8),
            Engine::StackDist
        );
        // ...and to the point-count rule when there is no trace either.
        assert_eq!(
            Engine::auto_for_kernel(16, &crate::fft::Fft, 9),
            Engine::StackDist
        );
        assert_eq!(
            Engine::auto_for_kernel(2, &crate::fft::Fft, 9),
            Engine::Replay
        );
    }

    #[test]
    fn analytic_engine_sweep_is_bit_identical_and_errors_without_derivation() {
        let cfg = SweepConfig {
            n: 12,
            memories: vec![2, 8, 32, 128, 512],
            seed: 0,
            verify: Verify::None,
            engine: Engine::Analytic,
            ..SweepConfig::default()
        };
        let analytic = capacity_sweep(&MatMul, &cfg).unwrap();
        let onepass =
            capacity_sweep(&MatMul, &cfg.clone().with_engine(Engine::StackDist)).unwrap();
        assert_eq!(analytic.runs, onepass.runs);
        // A kernel without a derivation is the documented parameter error,
        // naming the kernel — never a silent fallback.
        let err = capacity_sweep(&crate::fft::Fft, &cfg).unwrap_err();
        match err {
            KernelError::BadParameters { reason } => {
                assert!(reason.contains("fft"), "got: {reason}");
                assert!(reason.contains("no analytic profile"), "got: {reason}");
            }
            other => panic!("expected BadParameters, got {other}"),
        }
    }

    #[test]
    fn traffic_model_defaults_and_predicates() {
        assert_eq!(TrafficModel::default(), TrafficModel::WORD);
        assert!(TrafficModel::WORD.is_word_granular_read_priced());
        assert!(!TrafficModel::device(1).is_word_granular_read_priced());
        assert!(!TrafficModel::device(8).is_word_granular_read_priced());
        let line_only = TrafficModel {
            line_words: 4,
            writebacks: false,
        };
        assert!(!line_only.is_word_granular_read_priced());
        // Default configs carry the word model: every pre-device sweep is
        // untouched by construction.
        assert_eq!(SweepConfig::default().traffic, TrafficModel::WORD);
    }

    #[test]
    fn device_engines_are_bit_identical() {
        let cfg = SweepConfig {
            n: 12,
            memories: vec![4, 16, 64, 256, 1024, 4096],
            seed: 0,
            verify: Verify::None,
            engine: Engine::Replay,
            ..SweepConfig::default()
        }
        .with_traffic(TrafficModel::device(2));
        let replay = capacity_sweep(&MatMul, &cfg).unwrap();
        let onepass =
            capacity_sweep(&MatMul, &cfg.clone().with_engine(Engine::StackDist)).unwrap();
        assert_eq!(replay.runs, onepass.runs);
        let par = capacity_sweep_par(&MatMul, &cfg).unwrap();
        assert_eq!(replay.runs, par.runs);
        // A device run carries the dual ledger: the scalar view is the
        // sum of the streams, and matmul's C stores make the ledger
        // genuinely non-empty.
        for run in &replay.runs {
            let cost = &run.execution.cost;
            assert_eq!(
                cost.io_at(0).unwrap(),
                cost.read_at(0).unwrap() + cost.writeback_at(0).unwrap()
            );
            assert!(cost.writeback_at(0).unwrap() > 0, "m = {}", run.m);
        }
    }

    #[test]
    fn device_line1_read_stream_matches_the_word_granular_sweep() {
        // Write-allocate at line_words = 1: every miss fetches exactly
        // the word the legacy model charged, so the device read stream IS
        // the word-granular sweep's traffic bit for bit — write-backs
        // ride on top as the separate stream.
        let word_cfg = SweepConfig {
            n: 12,
            memories: vec![4, 16, 64, 256, 1024],
            verify: Verify::None,
            ..SweepConfig::default()
        };
        let device_cfg = word_cfg.clone().with_traffic(TrafficModel::device(1));
        let word = capacity_sweep(&MatMul, &word_cfg).unwrap();
        let device = capacity_sweep(&MatMul, &device_cfg).unwrap();
        assert_eq!(word.runs.len(), device.runs.len());
        for (w, d) in word.runs.iter().zip(&device.runs) {
            assert_eq!(w.execution.cost.io_at(0), d.execution.cost.read_at(0));
        }
    }

    #[test]
    fn line_only_models_price_reads_without_a_ledger() {
        // line_words > 1 with write-backs off: line-granular all-read
        // pricing — whole lines move, no store ever dirties one.
        let cfg = SweepConfig {
            n: 12,
            memories: vec![16, 64, 256],
            verify: Verify::None,
            ..SweepConfig::default()
        }
        .with_traffic(TrafficModel {
            line_words: 4,
            writebacks: false,
        });
        let onepass = capacity_sweep(&MatMul, &cfg).unwrap();
        let replay = capacity_sweep(&MatMul, &cfg.clone().with_engine(Engine::Replay)).unwrap();
        assert_eq!(onepass.runs, replay.runs);
        for run in &onepass.runs {
            assert_eq!(run.execution.cost.writeback_at(0), Some(0));
            assert_eq!(
                run.execution.cost.io_at(0).unwrap() % 4,
                0,
                "line-granular traffic moves whole lines"
            );
        }
    }

    #[test]
    fn analytic_engine_declines_device_real_models() {
        // MatMul derives an analytic profile, but the closed forms are
        // word-granular read-priced: under a device model the tier
        // declines and the one-pass tagged engine answers — identical to
        // asking for stackdist directly.
        let cfg = SweepConfig {
            n: 12,
            memories: vec![4, 16, 64, 256],
            verify: Verify::None,
            engine: Engine::Analytic,
            ..SweepConfig::default()
        }
        .with_traffic(TrafficModel::device(4));
        let fell_back = capacity_sweep(&MatMul, &cfg).unwrap();
        let onepass =
            capacity_sweep(&MatMul, &cfg.clone().with_engine(Engine::StackDist)).unwrap();
        assert_eq!(fell_back.runs, onepass.runs);
        // Auto-selection never steers a device sweep into the tiers that
        // would refuse (or misprice) it.
        let device = TrafficModel::device(4);
        assert_eq!(
            Engine::auto_for_model(16, &MatMul, 12, device),
            Engine::StackDist
        );
        assert_eq!(
            Engine::auto_for_model(2, &MatMul, 12, device),
            Engine::Replay
        );
        // Under the word model it is exactly auto_for_kernel.
        assert_eq!(
            Engine::auto_for_model(16, &MatMul, 12, TrafficModel::WORD),
            Engine::Analytic
        );
    }

    #[test]
    fn segmented_and_sampled_engines_refuse_device_real_models() {
        for engine in [
            Engine::StackDistPar { threads: 2 },
            Engine::Sampled { shift: 2 },
        ] {
            let cfg = SweepConfig {
                n: 12,
                memories: vec![16, 64],
                verify: Verify::None,
                engine,
                ..SweepConfig::default()
            }
            .with_traffic(TrafficModel::device(2));
            let err = capacity_sweep(&MatMul, &cfg).unwrap_err();
            match err {
                KernelError::BadParameters { reason } => {
                    assert!(reason.contains("word-granular"), "got: {reason}");
                    assert!(reason.contains(&engine_spec(engine)), "got: {reason}");
                }
                other => panic!("expected BadParameters, got {other}"),
            }
        }
    }

    #[test]
    fn budgeted_and_malformed_device_sweeps_are_refused() {
        let base = SweepConfig {
            n: 12,
            memories: vec![16, 64],
            verify: Verify::None,
            ..SweepConfig::default()
        };
        let budgeted = base
            .clone()
            .with_traffic(TrafficModel::device(2))
            .with_budget(Budget::unlimited());
        assert!(matches!(
            capacity_sweep(&MatMul, &budgeted),
            Err(KernelError::BadParameters { .. })
        ));
        for bad_line in [0u64, 3, 12] {
            let cfg = base.clone().with_traffic(TrafficModel::device(bad_line));
            let err = capacity_sweep(&MatMul, &cfg).unwrap_err();
            assert!(
                matches!(&err, KernelError::BadParameters { reason }
                    if reason.contains("power of two")),
                "{err}"
            );
        }
    }

    #[test]
    fn device_sweeps_skip_capacities_below_one_line() {
        let cfg = SweepConfig {
            n: 8,
            memories: vec![1, 2, 4, 8, 64],
            verify: Verify::None,
            ..SweepConfig::default()
        }
        .with_traffic(TrafficModel::device(4));
        let result = capacity_sweep(&MatMul, &cfg).unwrap();
        let ms: Vec<usize> = result.runs.iter().map(|r| r.m).collect();
        assert_eq!(ms, vec![4, 8, 64], "a cache must hold at least one line");
    }

    #[test]
    fn uniform_line_hierarchy_device_engines_agree() {
        // An unannotated outer level inherits the sweep's line size, so
        // the ladder is uniform and the one-pass read is sound.
        let outer = vec![LevelSpec::new(Words::new(2048), WordsPerSec::new(1.0)).unwrap()];
        let cfg = SweepConfig {
            n: 12,
            memories: vec![16, 64, 256],
            verify: Verify::None,
            engine: Engine::Replay,
            ..SweepConfig::default()
        }
        .with_traffic(TrafficModel::device(4));
        let replay = hierarchy_capacity_sweep(&MatMul, &cfg, &outer).unwrap();
        let onepass =
            hierarchy_capacity_sweep(&MatMul, &cfg.clone().with_engine(Engine::StackDist), &outer)
                .unwrap();
        assert_eq!(replay.runs, onepass.runs);
        let par = hierarchy_capacity_sweep_par(&MatMul, &cfg, &outer).unwrap();
        assert_eq!(replay.runs, par.runs);
    }

    #[test]
    fn mixed_line_ladders_need_the_replay_engine() {
        // An outer disk-class level with its own 8-word line under a
        // 2-word local line: no cross-granularity LRU inclusion, so the
        // one-pass read is unsound and refused; the replay engine models
        // each level at its own granularity.
        let outer = vec![LevelSpec::new(Words::new(4096), WordsPerSec::new(0.5))
            .unwrap()
            .with_line_words(8)
            .unwrap()];
        let cfg = SweepConfig {
            n: 12,
            memories: vec![16, 64, 256],
            verify: Verify::None,
            engine: Engine::StackDist,
            ..SweepConfig::default()
        }
        .with_traffic(TrafficModel::device(2));
        let err = hierarchy_capacity_sweep(&MatMul, &cfg, &outer).unwrap_err();
        assert!(
            matches!(&err, KernelError::BadParameters { reason }
                if reason.contains("uniform line size")),
            "{err}"
        );
        let replayed =
            hierarchy_capacity_sweep(&MatMul, &cfg.clone().with_engine(Engine::Replay), &outer)
                .unwrap();
        assert_eq!(replayed.runs.len(), 3);
        for run in &replayed.runs {
            let cost = &run.execution.cost;
            assert_eq!(cost.level_count(), 2);
            assert!(cost.io_at(1).unwrap() <= cost.io_at(0).unwrap());
        }
    }

    #[test]
    fn annotated_outer_levels_route_word_sweeps_to_the_device_path() {
        // A word-granular (default) sweep over a line-annotated outer
        // ladder must not silently ignore the annotation: it routes
        // through the device path, where the level's own line size is
        // honored.
        let plain = vec![LevelSpec::new(Words::new(4096), WordsPerSec::new(1.0)).unwrap()];
        let lined = vec![plain[0].with_line_words(8).unwrap()];
        let cfg = SweepConfig {
            n: 12,
            memories: vec![16, 64, 256],
            verify: Verify::None,
            engine: Engine::Replay,
            ..SweepConfig::default()
        };
        let word = hierarchy_capacity_sweep(&MatMul, &cfg, &plain).unwrap();
        let device = hierarchy_capacity_sweep(&MatMul, &cfg, &lined).unwrap();
        assert_eq!(word.runs.len(), device.runs.len());
        for (w, d) in word.runs.iter().zip(&device.runs) {
            // The outer boundary now transfers whole 8-word lines...
            let outer_io = d.execution.cost.io_at(1).unwrap();
            assert_eq!(outer_io % 8, 0, "line-granular outer traffic");
            // ...while the unannotated local boundary stays word-granular
            // and bit-identical to the legacy path.
            assert_eq!(d.execution.cost.io_at(0), w.execution.cost.io_at(0));
        }
        // The one-pass engine refuses the mixed-granularity ladder (word
        // local under an 8-word outer line) instead of mispricing it.
        let err = hierarchy_capacity_sweep(
            &MatMul,
            &cfg.clone().with_engine(Engine::StackDist),
            &lined,
        )
        .unwrap_err();
        assert!(
            matches!(&err, KernelError::BadParameters { reason }
                if reason.contains("uniform line size")),
            "{err}"
        );
    }

    #[test]
    fn kernel_running_sweeps_refuse_device_real_outer_levels() {
        // The scheme executors count explicit word transfers; a
        // device-real annotation they cannot honor is an error, not a
        // silently word-priced run.
        let lined = vec![LevelSpec::new(Words::new(4096), WordsPerSec::new(1.0))
            .unwrap()
            .with_line_words(4)
            .unwrap()];
        let cfg = SweepConfig::pow2(12, 5, 8, 0).with_verify(Verify::None);
        for result in [
            hierarchy_sweep(&MatMul, &cfg, &lined),
            hierarchy_sweep_par(&MatMul, &cfg, &lined),
        ] {
            let err = result.unwrap_err();
            assert!(
                matches!(&err, KernelError::BadParameters { reason }
                    if reason.contains("device-real") && reason.contains("level 2")),
                "{err}"
            );
        }
        // A split write channel alone is just as device-real.
        let priced = vec![LevelSpec::new(Words::new(4096), WordsPerSec::new(1.0))
            .unwrap()
            .with_write_bandwidth(WordsPerSec::new(0.5))
            .unwrap()];
        assert!(hierarchy_sweep(&MatMul, &cfg, &priced).is_err());
    }

    #[test]
    fn analytic_engine_bypasses_the_degradation_ladder() {
        // Even a budget no replay engine could meet leaves the analytic
        // tier untouched: nothing to replay, nothing to degrade.
        let cfg = SweepConfig {
            n: 16,
            memories: vec![4, 16, 64, 256],
            seed: 0,
            verify: Verify::None,
            engine: Engine::Analytic,
            ..SweepConfig::default()
        }
        .with_budget(Budget {
            max_addresses: Some(1),
            max_resident_bytes: Some(1),
            max_wall: None,
        });
        let (profile, prov) =
            robust_capacity_profile(&MatMul, &cfg, &FaultPlan::none()).unwrap();
        assert_eq!(prov.requested, Engine::Analytic);
        assert_eq!(prov.used, Engine::Analytic);
        assert!(prov.steps.is_empty());
        assert!(profile.is_exact());
        assert_eq!(profile, exact_matmul_profile(16));
        // And the budgeted sweep path reports the same provenance.
        let swept = capacity_sweep(&MatMul, &cfg).unwrap();
        assert_eq!(swept.provenance.unwrap().used, Engine::Analytic);
    }

    #[test]
    fn analytic_engine_spec_round_trips() {
        assert_eq!(engine_spec(Engine::Analytic), "analytic");
    }

    #[test]
    fn capacity_sweep_measures_the_cache_model_not_the_scheme() {
        // At M = 3n² + slack the whole problem is resident: the cache
        // model's misses collapse to the compulsory 3n², far fewer than
        // the blocked scheme's traffic at small tile sides.
        let n = 12usize;
        let cfg = SweepConfig {
            n,
            memories: vec![3 * n * n + 8],
            seed: 0,
            verify: Verify::Full,
            engine: Engine::StackDist,
            ..SweepConfig::default()
        };
        let result = capacity_sweep(&MatMul, &cfg).unwrap();
        assert_eq!(result.runs[0].execution.cost.io_words(), 3 * (n as u64).pow(2));
        assert_eq!(result.runs[0].execution.cost.comp_ops(), 2 * (n as u64).pow(3));
    }

    #[test]
    fn capacity_sweep_skips_zero_capacities_and_respects_outer_ceiling() {
        let cfg = SweepConfig {
            n: 8,
            memories: vec![0, 4, 128, 512],
            seed: 0,
            verify: Verify::Full,
            engine: Engine::StackDist,
            ..SweepConfig::default()
        };
        let flat = capacity_sweep(&MatMul, &cfg).unwrap();
        assert_eq!(flat.runs.iter().map(|r| r.m).collect::<Vec<_>>(), vec![4, 128, 512]);
        let hier = hierarchy_capacity_sweep(&MatMul, &cfg, &outer_levels(&[256])).unwrap();
        assert_eq!(hier.runs.iter().map(|r| r.m).collect::<Vec<_>>(), vec![4, 128]);
        for run in &hier.runs {
            assert_eq!(run.execution.cost.level_count(), 2);
            assert!(run.execution.cost.traffic().is_monotone_non_increasing());
        }
    }

    #[test]
    fn hierarchy_capacity_sweep_engines_match_ladder_replay() {
        let cfg = SweepConfig {
            n: 10,
            memories: vec![8, 32, 96, 200],
            seed: 0,
            verify: Verify::Full,
            engine: Engine::Replay,
            ..SweepConfig::default()
        };
        let outer = outer_levels(&[256, 1024]);
        let replay = hierarchy_capacity_sweep(&MatMul, &cfg, &outer).unwrap();
        let onepass =
            hierarchy_capacity_sweep(&MatMul, &cfg.clone().with_engine(Engine::StackDist), &outer)
                .unwrap();
        assert_eq!(replay.runs, onepass.runs);
        let par = hierarchy_capacity_sweep_par(&MatMul, &cfg, &outer).unwrap();
        assert_eq!(replay.runs, par.runs);
    }

    #[test]
    fn capacity_sweep_without_a_trace_is_the_documented_error() {
        let cfg = SweepConfig {
            n: 8,
            memories: vec![16],
            seed: 0,
            verify: Verify::Full,
            engine: Engine::StackDist,
            ..SweepConfig::default()
        };
        let err = capacity_sweep(&AlwaysFails, &cfg).unwrap_err();
        assert!(
            matches!(&err, KernelError::BadParameters { reason }
                if reason.contains("no canonical access trace")),
            "{err}"
        );
    }

    #[test]
    fn engine_auto_switches_at_four_points() {
        assert_eq!(Engine::auto(0), Engine::Replay);
        assert_eq!(Engine::auto(3), Engine::Replay);
        assert_eq!(Engine::auto(4), Engine::StackDist);
        assert_eq!(Engine::auto(16), Engine::StackDist);
        // pow2 wires it through.
        assert_eq!(SweepConfig::pow2(8, 5, 6, 0).engine, Engine::Replay);
        assert_eq!(SweepConfig::pow2(8, 5, 12, 0).engine, Engine::StackDist);
    }

    fn tmp_policy(tag: &str, every: u64) -> CheckpointPolicy {
        let dir = std::env::temp_dir().join(format!(
            "balance-sweep-ckpt-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        CheckpointPolicy::every(dir, every)
    }

    fn exact_matmul_profile(n: usize) -> CapacityProfile {
        let trace = MatMul.access_trace(n).unwrap();
        let bound = trace.addr_bound();
        StackDistance::profile_of_bounded(trace.into_addrs(), bound)
    }

    #[test]
    fn budgeted_sweep_within_budget_is_bit_identical_and_tagged() {
        let cfg = SweepConfig {
            n: 12,
            memories: vec![16, 64, 256, 1024],
            engine: Engine::StackDist,
            ..SweepConfig::default()
        };
        let plain = capacity_sweep(&MatMul, &cfg).unwrap();
        assert!(plain.provenance.is_none());
        let roomy = Budget::unlimited().with_max_resident_bytes(1 << 30);
        let budgeted = capacity_sweep(&MatMul, &cfg.clone().with_budget(roomy)).unwrap();
        assert_eq!(plain.runs, budgeted.runs);
        let prov = budgeted.provenance.unwrap();
        assert!(!prov.degraded());
        assert_eq!(prov.used, Engine::StackDist);
        assert!(prov.describe().contains("as requested"));
    }

    #[test]
    fn tripped_resident_budget_degrades_to_sampling_and_reports_it() {
        // matmul n = 12 tracks 3·12² = 432 addresses ≈ 13.8 kB of exact
        // engine state: a 1 kB budget forces the sampled rung, whose
        // hash-backend estimate (432/16 addresses) fits.
        let budget = Budget::unlimited().with_max_resident_bytes(1024);
        let cfg = SweepConfig {
            n: 12,
            memories: vec![16, 256],
            engine: Engine::StackDistPar { threads: 4 },
            ..SweepConfig::default()
        }
        .with_budget(budget);
        let result = capacity_sweep(&MatMul, &cfg).unwrap();
        let prov = result.provenance.clone().unwrap();
        assert!(prov.degraded());
        assert!(matches!(prov.used, Engine::Sampled { .. }), "{prov:?}");
        // The whole ladder walk is on record: par → serial → sampled.
        assert!(prov.steps.len() >= 2, "{prov:?}");
        assert!(matches!(prov.steps[0].trip, BudgetTrip::Resident { .. }));
        assert!(prov.describe().starts_with("degraded"));
    }

    #[test]
    fn tripped_address_budget_escalates_the_sampling_rate() {
        let len = MatMul.access_trace(12).unwrap().len();
        // Allow only len/64 engine addresses: sampled:4 (len/16) still
        // trips, sampled:8 (len/256) clears it.
        let budget = Budget::unlimited().with_max_addresses(len >> 6);
        let cfg = SweepConfig {
            n: 12,
            memories: vec![64],
            engine: Engine::StackDist,
            ..SweepConfig::default()
        }
        .with_budget(budget);
        let result = capacity_sweep(&MatMul, &cfg).unwrap();
        let prov = result.provenance.unwrap();
        assert_eq!(prov.used, Engine::Sampled { shift: 8 }, "{prov:?}");
        assert!(prov
            .steps
            .iter()
            .all(|s| matches!(s.trip, BudgetTrip::Addresses { .. })));
    }

    #[test]
    fn impossible_resident_budget_is_the_typed_error() {
        let cfg = SweepConfig {
            n: 12,
            memories: vec![64],
            engine: Engine::StackDist,
            ..SweepConfig::default()
        }
        .with_budget(Budget::unlimited().with_max_resident_bytes(8));
        let err = capacity_sweep(&MatMul, &cfg).unwrap_err();
        assert!(matches!(err, KernelError::BudgetExhausted { .. }), "{err}");
    }

    #[test]
    fn zero_wall_budget_degrades_to_the_sampling_floor_but_still_answers() {
        // A deadline that has already passed trips at the first poll of
        // every deadline-armed rung; only the floor rung (which runs
        // without one) can finish. The trace must exceed the poll
        // interval (2²⁰) for the deadline to be observed at all.
        let n = 90;
        assert!(MatMul.access_trace(n).unwrap().len() > SAMPLED_DEADLINE_POLL);
        let cfg = SweepConfig {
            n,
            memories: vec![1024],
            engine: Engine::StackDist,
            ..SweepConfig::default()
        }
        .with_budget(Budget::unlimited().with_max_wall(std::time::Duration::ZERO));
        let result = capacity_sweep(&MatMul, &cfg).unwrap();
        let prov = result.provenance.unwrap();
        assert_eq!(
            prov.used,
            Engine::Sampled {
                shift: MAX_SAMPLE_SHIFT
            },
            "{prov:?}"
        );
        assert!(prov
            .steps
            .iter()
            .all(|s| matches!(s.trip, BudgetTrip::Wall { .. })));
    }

    #[test]
    fn checkpointed_sweep_killed_mid_replay_resumes_bit_identically() {
        let n = 12;
        let len = MatMul.access_trace(n).unwrap().len();
        let policy = tmp_policy("resume", 1000);
        let cfg = SweepConfig {
            n,
            memories: vec![16, 256, 1024],
            engine: Engine::StackDist,
            checkpoint: Some(policy.clone()),
            ..SweepConfig::default()
        };
        // First attempt dies mid-replay, past a few checkpoints.
        let faults = FaultPlan::none().with_die_at(len / 2);
        let err = robust_capacity_profile(&MatMul, &cfg, &faults).unwrap_err();
        assert!(matches!(err, KernelError::Interrupted { .. }), "{err}");
        // The re-run resumes from the persisted image and finishes with
        // the exact uninterrupted profile.
        let none = FaultPlan::none();
        let (profile, prov) = robust_capacity_profile(&MatMul, &cfg, &none).unwrap();
        assert_eq!(profile, exact_matmul_profile(n));
        let resumed = prov.resumed_at.unwrap();
        assert!(resumed >= 1000 && resumed < len, "resumed at {resumed}");
        // The image was consumed: a fresh run starts from scratch.
        let (_, prov2) = robust_capacity_profile(&MatMul, &cfg, &none).unwrap();
        assert_eq!(prov2.resumed_at, None);
        let _ = std::fs::remove_dir_all(&policy.dir);
    }

    #[test]
    fn corrupted_checkpoint_in_a_sweep_falls_back_to_a_fresh_replay() {
        let n = 12;
        let len = MatMul.access_trace(n).unwrap().len();
        let policy = tmp_policy("corrupt", 1000);
        let cfg = SweepConfig {
            n,
            memories: vec![64],
            engine: Engine::StackDist,
            checkpoint: Some(policy.clone()),
            ..SweepConfig::default()
        };
        // Die mid-replay with every persisted snapshot corrupted.
        let faults = FaultPlan::none()
            .with_die_at(len / 2)
            .with_corrupt_checkpoints(u32::MAX);
        let _ = robust_capacity_profile(&MatMul, &cfg, &faults).unwrap_err();
        // The checksum rejects the image; the re-run starts fresh and is
        // still exact.
        let none = FaultPlan::none();
        let (profile, prov) = robust_capacity_profile(&MatMul, &cfg, &none).unwrap();
        assert_eq!(profile, exact_matmul_profile(n));
        assert_eq!(prov.resumed_at, None);
        let _ = std::fs::remove_dir_all(&policy.dir);
    }

    #[test]
    fn killed_segment_worker_inside_a_robust_sweep_is_retried() {
        let policy = tmp_policy("segkill", 500);
        let cfg = SweepConfig {
            n: 12,
            memories: vec![64],
            engine: Engine::StackDistPar { threads: 3 },
            checkpoint: Some(policy.clone()),
            ..SweepConfig::default()
        };
        let faults = FaultPlan::none().with_kill_segment(1, 1);
        let (profile, prov) = robust_capacity_profile(&MatMul, &cfg, &faults).unwrap();
        assert_eq!(profile, exact_matmul_profile(12));
        assert!(prov.segment_retries >= 1, "{prov:?}");
        assert!(prov.describe().contains("dead segment worker"));
        let _ = std::fs::remove_dir_all(&policy.dir);
    }

    #[test]
    fn degradation_ladder_walks_par_serial_sampled_to_the_floor() {
        let mut engine = Engine::StackDistPar { threads: 0 };
        let mut rungs = vec![engine];
        while let Some(next) = next_rung(engine) {
            engine = next;
            rungs.push(engine);
        }
        assert_eq!(rungs[1], Engine::StackDist);
        assert_eq!(rungs[2], Engine::Sampled { shift: 4 });
        assert_eq!(
            *rungs.last().unwrap(),
            Engine::Sampled {
                shift: MAX_SAMPLE_SHIFT
            }
        );
        // Estimates shrink (weakly) down the ladder — the invariant the
        // single-pass pre-check relies on.
        let (bound, len) = (1 << 20, 1 << 28);
        for pair in rungs.windows(2) {
            assert!(
                estimated_resident_bytes(pair[1], bound, len)
                    <= estimated_resident_bytes(pair[0], bound, len),
                "{pair:?}"
            );
            assert!(
                engine_address_cost(pair[1], len) <= engine_address_cost(pair[0], len),
                "{pair:?}"
            );
        }
        // Replay enters at the serial one-pass rung.
        assert_eq!(next_rung(Engine::Replay), Some(Engine::StackDist));
    }

    #[test]
    fn hierarchy_sweep_rejects_malformed_outer_ladders() {
        let cfg = SweepConfig {
            n: 16,
            memories: vec![16],
            seed: 0,
            verify: Verify::Full,
            engine: Engine::Replay,
            ..SweepConfig::default()
        };
        // Outer capacities must grow: 4096 then 1024 is rejected.
        let err = hierarchy_sweep(&MatMul, &cfg, &outer_levels(&[4096, 1024])).unwrap_err();
        assert!(matches!(err, KernelError::BadParameters { .. }), "{err}");
        // ... even when no sweep point survives the eligibility filter
        // (the ladder is validated up front, not per point).
        let empty_cfg = SweepConfig {
            n: 16,
            memories: vec![8192], // >= first outer capacity: filtered out
            seed: 0,
            verify: Verify::Full,
            engine: Engine::Replay,
            ..SweepConfig::default()
        };
        for result in [
            hierarchy_sweep(&MatMul, &empty_cfg, &outer_levels(&[4096, 1024])),
            hierarchy_sweep_par(&MatMul, &empty_cfg, &outer_levels(&[4096, 1024])),
        ] {
            assert!(matches!(result, Err(KernelError::BadParameters { .. })));
        }
    }
}
