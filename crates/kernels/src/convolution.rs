//! 1-D convolution (FIR filtering) — an extension kernel.
//!
//! The paper closes by inviting the characterization of *other*
//! computations. Convolution with a length-`k` filter is instructive: each
//! input word is used exactly `k` times, so the intensity saturates at
//! `Θ(k)` — a constant in `M`, like matvec, but with a *tunable* constant.
//! The filter length, not the local memory, sets the balance point: a PE can
//! be rebalanced for convolution only by lengthening the filter (changing
//! the problem) or raising `IO`, never by adding memory.
//!
//! The out-of-core algorithm keeps the filter and a sliding input window
//! resident and streams the signal through once.

use balance_core::{CostProfile, HierarchySpec, IntensityModel};
use balance_machine::{AnalyticProfile, ExternalStore, Pe};

use crate::error::KernelError;
use crate::traits::{Kernel, KernelRun};
use crate::verify::Verify;
use crate::workload;

/// Streaming FIR convolution `y[i] = Σ_j h[j]·x[i+j]`. Problem size `n` =
/// number of outputs; the filter length is a kernel parameter.
#[derive(Debug, Clone, Copy)]
pub struct Convolution {
    taps: usize,
}

impl Convolution {
    /// Creates a convolution kernel with `taps ≥ 1` filter coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `taps == 0`.
    #[must_use]
    pub fn new(taps: usize) -> Self {
        assert!(taps >= 1, "filter needs at least one tap");
        Convolution { taps }
    }

    /// The filter length `k`.
    #[must_use]
    pub fn taps(&self) -> usize {
        self.taps
    }
}

/// Reference implementation.
#[must_use]
pub fn convolve_reference(x: &[f64], h: &[f64], n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| h.iter().enumerate().map(|(j, &hj)| hj * x[i + j]).sum())
        .collect()
}

impl Kernel for Convolution {
    fn access_trace(&self, n: usize) -> Option<crate::trace::AccessTrace> {
        (n > 0).then(|| crate::trace::convolution(n, self.taps()))
    }

    /// Output `i` interleaves `[x[i+t], w[t]]` for `t = 0..k`, then writes
    /// `y[i]`. Each window slide re-touches `x` values at distance `2k-1`
    /// and `w` taps at `2k` — except the last tap `w[k-1]`, whose reuse
    /// window additionally spans the fresh `x[i+k]`: distance `2k+1`.
    fn analytic_profile(&self, n: usize) -> Option<AnalyticProfile> {
        if n == 0 {
            return None;
        }
        let n64 = n as u64;
        let k = self.taps() as u64;
        let mut p = AnalyticProfile::new();
        p.record_compulsory(2 * n64 + 2 * k - 1);
        p.record_class(2 * k - 1, (n64 - 1) * (k - 1));
        p.record_class(2 * k, (n64 - 1) * (k - 1));
        p.record_class(2 * k + 1, n64 - 1);
        Some(p)
    }

    fn name(&self) -> &'static str {
        "convolution"
    }

    fn description(&self) -> &'static str {
        "streaming FIR filter; every input used k times (extension: I/O-bounded with constant k)"
    }

    fn intensity_model(&self) -> IntensityModel {
        // 2k ops per output; (n + k) reads + n writes ≈ 2 words per output.
        IntensityModel::constant(self.taps as f64)
    }

    fn analytic_cost(&self, n: usize, _m: usize) -> CostProfile {
        let n64 = n as u64;
        let k = self.taps as u64;
        CostProfile::new(2 * k * n64, 2 * n64 + k)
    }

    fn min_memory(&self, _n: usize) -> usize {
        // Filter + window of k inputs + room to slide + 1 output word.
        2 * self.taps + 2
    }

    fn run_on(
        &self,
        n: usize,
        machine: &HierarchySpec,
        seed: u64,
        verify: Verify,
    ) -> Result<KernelRun, KernelError> {
        // No cheap randomized check exists: verify fully under any policy.
        let _ = verify;
        let m = machine.local_capacity_words();
        if n == 0 {
            return Err(KernelError::BadParameters {
                reason: "output count must be positive".into(),
            });
        }
        if m < self.min_memory(n) {
            return Err(KernelError::MemoryTooSmall {
                have: m,
                need: self.min_memory(n),
            });
        }
        let k = self.taps;

        let x_data = workload::random_vector(n + k, seed);
        let h_data = workload::random_vector(k, seed ^ 0xfeed);
        let mut store = ExternalStore::new();
        let x = store.alloc_from(&x_data);
        let h = store.alloc_from(&h_data);
        let y = store.alloc(n);

        let mut pe = Pe::for_hierarchy(machine);
        let buf_h = pe.alloc(k)?;
        pe.load(&store, h, buf_h, 0)?;
        // Sliding window: chunk of inputs covering `c` outputs needs c+k-1
        // input words; use the remaining memory for the chunk + outputs.
        let c = ((m - 2 * k) / 2).clamp(1, n);
        let buf_x = pe.alloc(c + k)?;
        let buf_y = pe.alloc(c)?;

        for i0 in (0..n).step_by(c) {
            let cb = c.min(n - i0);
            pe.load(&store, x.at(i0, cb + k)?, buf_x, 0)?;
            let ops = pe.update(buf_y, &[buf_x, buf_h], |yv, srcs| {
                let (xv, hv) = (srcs[0], srcs[1]);
                let mut ops = 0u64;
                for i in 0..cb {
                    let mut acc = 0.0;
                    for j in 0..k {
                        acc += hv[j] * xv[i + j];
                    }
                    yv[i] = acc;
                    ops += 2 * k as u64;
                }
                ops
            })?;
            pe.count_ops(ops);
            pe.store(&mut store, buf_y, 0, y.at(i0, cb)?)?;
        }

        let want = convolve_reference(&x_data, &h_data, n);
        let got = store.slice(y);
        let err = crate::reference::max_abs_diff(&want, got);
        let tol = 1e-10 * (k as f64);
        if err > tol {
            return Err(KernelError::VerificationFailed {
                what: "convolution",
                max_error: err,
                tolerance: tol,
            });
        }

        Ok(KernelRun {
            n,
            m,
            execution: pe.execution(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verifies_across_memories_and_taps() {
        for k in [1usize, 4, 16] {
            let kernel = Convolution::new(k);
            for m in [kernel.min_memory(100), 64.max(2 * k + 2), 512] {
                let run = kernel.run(100, m, 3).unwrap();
                assert_eq!(run.execution.cost.comp_ops(), (2 * k * 100) as u64);
            }
        }
    }

    #[test]
    fn io_is_one_pass_plus_overlap() {
        // Window overlap re-reads k words per chunk; with big chunks the
        // total approaches n + k + n.
        let k = 8;
        let kernel = Convolution::new(k);
        let n = 1000;
        let run = kernel.run(n, 4096, 1).unwrap();
        let io = run.execution.cost.io_words();
        // h (k) + x (n + k) + y (n) = 2n + 2k with a single chunk.
        assert_eq!(io, (2 * n + 2 * k) as u64);
    }

    #[test]
    fn intensity_saturates_at_taps() {
        // Tiny memories pay window re-reads; once chunks are much longer
        // than the filter, the intensity saturates at k and further memory
        // buys nothing.
        let k = 16;
        let kernel = Convolution::new(k);
        let n = 2000;
        let r_mid = kernel.run(n, 1 << 10, 2).unwrap().intensity();
        let r_big = kernel.run(n, 1 << 14, 2).unwrap().intensity();
        assert!(r_big <= k as f64 + 0.5, "r_big = {r_big}");
        assert!((r_big / r_mid - 1.0).abs() < 0.05, "{r_mid} → {r_big}");
    }

    #[test]
    fn longer_filters_raise_the_constant() {
        let n = 1000;
        let r4 = Convolution::new(4).run(n, 4096, 1).unwrap().intensity();
        let r32 = Convolution::new(32).run(n, 4096, 1).unwrap().intensity();
        assert!(r32 > 6.0 * r4, "r4 = {r4}, r32 = {r32}");
    }

    #[test]
    fn io_bounded_flag() {
        assert!(Convolution::new(8).io_bounded());
    }

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(Convolution::new(4).run(0, 100, 0).is_err());
        assert!(Convolution::new(4).run(10, 5, 0).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one tap")]
    fn zero_taps_panics() {
        let _ = Convolution::new(0);
    }

    #[test]
    fn reference_impulse_response() {
        // Convolving an impulse with h recovers h.
        let mut x = vec![0.0; 20];
        x[0] = 1.0;
        let h = vec![3.0, 2.0, 1.0];
        let y = convolve_reference(&x, &h, 10);
        assert_eq!(y[0], 3.0);
        // y[i] = h[j] where x[i+j] = 1 => j = -i: only i=0 sees the impulse
        // at j=0.
        assert_eq!(y[1], 0.0);
    }
}
