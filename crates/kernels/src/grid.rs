//! d-dimensional grid relaxation (paper §3.3).
//!
//! The computation: many Jacobi sweeps over a d-dimensional grid, each point
//! replaced by a weighted average of its `2d+1`-point star neighborhood. In
//! the paper's arrangement an array of PEs partitions the grid; each PE
//! stores an `s^d` subgrid *permanently* and, per iteration, exchanges only
//! its surface with its neighbors:
//!
//! ```text
//! C_comp per iteration = Θ(s^d)       (update every resident point)
//! C_io   per iteration = Θ(s^(d-1))   (halo faces only)
//! r(M)   = Θ(s) = Θ(M^(1/d))          ⇒  M_new = α^d · M_old
//! ```
//!
//! We simulate one such PE: its tile lives in local memory across all
//! iterations; the surrounding grid is evolved harness-side (it stands for
//! the neighboring PEs) and supplies the halo values each iteration through
//! counted reads. The tile's final state is verified bit-for-bit against a
//! reference whole-grid Jacobi computation — which also proves the halo
//! plumbing is time-correct.
//!
//! The problem size `n` is the **iteration count**; the tile side `s` is the
//! largest that fits `(s+2)^d + s^d ≤ M`.

use std::collections::BTreeMap;

use balance_core::{CostProfile, HierarchySpec, IntensityModel};
use balance_machine::{AnalyticProfile, CapacityProfile, ExternalStore, Pe, StackDistance};

use crate::error::KernelError;
use crate::reference;
use crate::traits::{Kernel, KernelRun};
use crate::verify::Verify;
use crate::workload;

/// Jacobi relaxation on a d-dimensional grid (d = 1..=4).
#[derive(Debug, Clone, Copy)]
pub struct GridRelaxation {
    dim: usize,
}

impl GridRelaxation {
    /// Creates the kernel for dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= dim <= 4`.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        assert!((1..=4).contains(&dim), "dimension must be 1..=4");
        GridRelaxation { dim }
    }

    /// The grid dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The largest tile side `s` with `(s+2)^d + s^d ≤ m`.
    #[must_use]
    pub fn tile_side(&self, m: usize) -> usize {
        let d = self.dim as u32;
        let mut s = 1usize;
        while (s + 3).pow(d) + (s + 1).pow(d) <= m {
            s += 1;
        }
        s
    }
}

/// Row-major strides for a hyper-rectangular shape.
fn strides(dims: &[usize]) -> Vec<usize> {
    let d = dims.len();
    let mut st = vec![1usize; d];
    for i in (0..d.saturating_sub(1)).rev() {
        st[i] = st[i + 1] * dims[i + 1];
    }
    st
}

/// Iterates all coordinates of `dims` in row-major order.
fn for_each_coord(dims: &[usize], mut f: impl FnMut(&[usize], usize)) {
    let total: usize = dims.iter().product();
    let d = dims.len();
    let mut coord = vec![0usize; d];
    for idx in 0..total {
        f(&coord, idx);
        for dim in (0..d).rev() {
            coord[dim] += 1;
            if coord[dim] < dims[dim] {
                break;
            }
            coord[dim] = 0;
        }
    }
}

impl Kernel for GridRelaxation {
    fn access_trace(&self, n: usize) -> Option<crate::trace::AccessTrace> {
        (n > 0).then(|| crate::trace::grid(self.dim, n))
    }

    /// Grid relaxation's problem size is the sweep count `n` over a fixed
    /// periodic `side^dim` grid, and the ping-pong access pattern is
    /// *periodic in the sweep index*: from sweep 2 onward every sweep adds
    /// the same reuse-class increment (the buffers just swap roles).
    /// Rather than hand-deriving the `O(side)` boundary-wrap classes, this
    /// bootstraps them: replay 2, 3, and 4 sweeps — constant work,
    /// `≤ 4·side^dim·(2·dim+2)` addresses, independent of `n` — take the
    /// per-sweep class delta, require the two deltas to agree (else fall
    /// through to the measured engines), and extrapolate `n-4` more sweeps.
    /// Exactness is pinned by the same registry proptests as the
    /// closed-form kernels.
    fn analytic_profile(&self, n: usize) -> Option<AnalyticProfile> {
        if n == 0 {
            return None;
        }
        let replayed =
            |iters: usize| StackDistance::profile_of(crate::trace::grid(self.dim, iters).into_addrs());
        let to_analytic = |p: &CapacityProfile| {
            let mut a = AnalyticProfile::new();
            a.record_compulsory(p.compulsory_misses());
            for (d, c) in p.reuse_classes() {
                a.record_class(d, c);
            }
            a
        };
        if n <= 4 {
            return Some(to_analytic(&replayed(n)));
        }
        let p2 = replayed(2);
        let p3 = replayed(3);
        let p4 = replayed(4);
        if p2.compulsory_misses() != p4.compulsory_misses()
            || p3.compulsory_misses() != p4.compulsory_misses()
        {
            return None;
        }
        // Per-sweep increment of the reuse-class histogram; None if any
        // class shrank (adding a sweep can only add reuses).
        let delta = |hi: &CapacityProfile, lo: &CapacityProfile| -> Option<Vec<(u64, u64)>> {
            let mut lo_classes: BTreeMap<u64, u64> = lo.reuse_classes().collect();
            let mut inc = Vec::new();
            for (dist, count) in hi.reuse_classes() {
                let prev = lo_classes.remove(&dist).unwrap_or(0);
                let diff = count.checked_sub(prev)?;
                if diff > 0 {
                    inc.push((dist, diff));
                }
            }
            lo_classes.is_empty().then_some(inc)
        };
        let d43 = delta(&p4, &p3)?;
        if delta(&p3, &p2)? != d43 {
            return None;
        }
        let extra = n as u64 - 4;
        let mut a = to_analytic(&p4);
        for (dist, count) in d43 {
            a.record_class(dist, count * extra);
        }
        Some(a)
    }

    fn name(&self) -> &'static str {
        match self.dim {
            1 => "grid1d",
            2 => "grid2d",
            3 => "grid3d",
            _ => "grid4d",
        }
    }

    fn description(&self) -> &'static str {
        "Jacobi relaxation; one PE keeps an s^d tile resident, halo I/O per sweep (paper §3.3)"
    }

    fn intensity_model(&self) -> IntensityModel {
        // Per iteration: (2d+1)·s^d ops vs 2d·s^(d-1) halo words:
        // r ≈ ((2d+1)/(2d))·s with s ≈ (M/2)^(1/d).
        let d = self.dim as f64;
        let coeff = ((2.0 * d + 1.0) / (2.0 * d)) * 0.5f64.powf(1.0 / d);
        IntensityModel::root_m(self.dim as u32, coeff)
    }

    fn analytic_cost(&self, n: usize, m: usize) -> CostProfile {
        let d = self.dim as u32;
        let s = self.tile_side(m) as u64;
        let t = n as u64;
        let points = s.pow(d);
        let face = s.pow(d - 1);
        let comp = t * (2 * u64::from(d) + 1) * points;
        let io = 2 * points + t * 2 * u64::from(d) * face;
        CostProfile::new(comp, io)
    }

    fn min_memory(&self, _n: usize) -> usize {
        3usize.pow(self.dim as u32) + 1
    }

    fn run_on(
        &self,
        n: usize,
        machine: &HierarchySpec,
        seed: u64,
        verify: Verify,
    ) -> Result<KernelRun, KernelError> {
        // No cheap randomized check exists: verify fully under any policy.
        let _ = verify;
        let m = machine.local_capacity_words();
        let d = self.dim;
        if n == 0 {
            return Err(KernelError::BadParameters {
                reason: "iteration count must be positive".into(),
            });
        }
        if m < self.min_memory(n) {
            return Err(KernelError::MemoryTooSmall {
                have: m,
                need: self.min_memory(n),
            });
        }
        let s = self.tile_side(m);
        let g = 2 * s; // full grid side: the tile is one of 2^d partitions
        let grid_dims = vec![g; d];
        let tile_dims = vec![s; d];
        let ext_dims = vec![s + 2; d];
        let g_str = strides(&grid_dims);
        let t_str = strides(&tile_dims);
        let e_str = strides(&ext_dims);
        let tile_points: usize = s.pow(d as u32);
        let ext_points: usize = (s + 2).pow(d as u32);

        // The outside world: full grid state (stands for all other PEs).
        let mut state = workload::random_grid(g.pow(d as u32), seed);
        let mut store = ExternalStore::new();
        let grid_region = store.alloc_from(&state);
        let out_region = store.alloc(tile_points);

        let mut pe = Pe::for_hierarchy(machine);
        let tile = pe.alloc(tile_points)?;
        let ext = pe.alloc(ext_points)?;

        // Initial tile load (the PE's permanent resident data).
        {
            // Row segments along the last dimension are contiguous.
            let row_dims = &tile_dims[..d - 1];
            for_each_coord(row_dims, |coord, _| {
                let g_off: usize = coord.iter().zip(&g_str).map(|(c, st)| c * st).sum();
                let t_off: usize = coord.iter().zip(&t_str).map(|(c, st)| c * st).sum();
                // Errors inside the closure are deferred via expect: the
                // region arithmetic is exact by construction.
                let region = grid_region.at(g_off, s).unwrap_or_else(|e| panic!("tile row in range: {e}"));
                pe.load(&store, region, tile, t_off).unwrap_or_else(|e| panic!("tile row fits: {e}"));
            });
        }

        let weight = 1.0 / (2.0 * d as f64 + 1.0);
        for _t in 0..n {
            // 1. Copy the resident tile into the interior of the halo buffer
            //    (local move: free in the information model).
            {
                pe.update(ext, &[tile], |e, srcs| {
                    let tl = srcs[0];
                    for_each_coord(&tile_dims, |coord, t_idx| {
                        let e_idx: usize =
                            coord.iter().zip(&e_str).map(|(c, st)| (c + 1) * st).sum();
                        e[e_idx] = tl[t_idx];
                    });
                })?;
            }
            // 2. Read the halo faces (counted I/O) from the outside world.
            //    Periodic wrap on the full grid.
            let face_dims: Vec<usize> = vec![s; d - 1];
            for dim in 0..d {
                for (side, gc) in [(0usize, g - 1), (s + 1, s % g)] {
                    // ext coordinate along `dim` is `side`; grid coordinate
                    // along `dim` is gc (wrapping: -1 ≡ g-1, s ≡ s).
                    for_each_coord(&face_dims, |coord, _| {
                        // Interleave the face coordinate around `dim`.
                        let mut e_idx = side * e_str[dim];
                        let mut g_idx = gc * g_str[dim];
                        let mut ci = 0;
                        for dd in 0..d {
                            if dd == dim {
                                continue;
                            }
                            e_idx += (coord[ci] + 1) * e_str[dd];
                            g_idx += coord[ci] * g_str[dd];
                            ci += 1;
                        }
                        let region = grid_region.at(g_idx, 1).unwrap_or_else(|e| panic!("halo in range: {e}"));
                        pe.load(&store, region, ext, e_idx).unwrap_or_else(|e| panic!("halo word fits: {e}"));
                    });
                }
            }
            // 3. Compute the new tile from the halo buffer (counted ops).
            pe.update(tile, &[ext], |tl, srcs| {
                let e = srcs[0];
                for_each_coord(&tile_dims, |coord, t_idx| {
                    let e_idx: usize = coord.iter().zip(&e_str).map(|(c, st)| (c + 1) * st).sum();
                    let mut acc = e[e_idx];
                    for dd in 0..d {
                        acc += e[e_idx + e_str[dd]] + e[e_idx - e_str[dd]];
                    }
                    tl[t_idx] = acc * weight;
                });
            })?;
            pe.count_ops(((2 * d + 1) * tile_points) as u64);

            // 4. The rest of the world advances one step (uncounted: that is
            //    the neighboring PEs' work), and the store is refreshed.
            state = reference::jacobi_step(&state, &grid_dims);
            store.slice_mut(grid_region).copy_from_slice(&state);
        }

        // Write the final tile out (counted).
        {
            let row_dims = &tile_dims[..d - 1];
            for_each_coord(row_dims, |coord, _| {
                let t_off: usize = coord.iter().zip(&t_str).map(|(c, st)| c * st).sum();
                let region = out_region.at(t_off, s).unwrap_or_else(|e| panic!("out row in range: {e}"));
                pe.store(&mut store, tile, t_off, region)
                    .unwrap_or_else(|e| panic!("out row fits: {e}"));
            });
        }

        // Verify: the PE's tile must match the reference grid's tile region
        // after n sweeps (same arithmetic order ⇒ tight tolerance).
        let got = store.slice(out_region);
        let mut err = 0.0f64;
        for_each_coord(&tile_dims, |coord, t_idx| {
            let g_idx: usize = coord.iter().zip(&g_str).map(|(c, st)| c * st).sum();
            err = err.max((got[t_idx] - state[g_idx]).abs());
        });
        let tol = 1e-12;
        if err > tol {
            return Err(KernelError::VerificationFailed {
                what: "grid relaxation",
                max_error: err,
                tolerance: tol,
            });
        }

        Ok(KernelRun {
            n,
            m,
            execution: pe.execution(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_side_fits_memory() {
        for d in 1..=4 {
            let k = GridRelaxation::new(d);
            for m in [k.min_memory(1), 64, 256, 1024, 4096] {
                if m < k.min_memory(1) {
                    continue;
                }
                let s = k.tile_side(m);
                assert!(
                    (s + 2).pow(d as u32) + s.pow(d as u32) <= m,
                    "d={d}, m={m}, s={s}"
                );
                let s2 = s + 1;
                assert!(
                    (s2 + 2).pow(d as u32) + s2.pow(d as u32) > m,
                    "d={d}, m={m}: s={s} not maximal"
                );
            }
        }
    }

    #[test]
    fn all_dimensions_verify() {
        for d in 1..=4 {
            let k = GridRelaxation::new(d);
            let m = match d {
                1 => 20,
                2 => 64,
                3 => 300,
                _ => 1400,
            };
            let run = k.run(6, m, 42).unwrap();
            assert!(run.execution.cost.comp_ops() > 0, "d = {d}");
        }
    }

    #[test]
    fn comp_ops_match_stencil_count() {
        let k = GridRelaxation::new(2);
        let m = 64; // s = 4: (6)^2 + 4^2 = 52 <= 64
        let s = k.tile_side(m);
        let t = 5;
        let run = k.run(t, m, 1).unwrap();
        assert_eq!(
            run.execution.cost.comp_ops(),
            (t * 5 * s * s) as u64,
            "s = {s}"
        );
    }

    #[test]
    fn io_matches_analytic_model() {
        let k = GridRelaxation::new(2);
        let (t, m) = (8, 100);
        let run = k.run(t, m, 2).unwrap();
        let analytic = k.analytic_cost(t, m);
        assert_eq!(run.execution.cost.io_words(), analytic.io_words());
    }

    #[test]
    fn intensity_grows_with_memory_per_dimension() {
        // For fixed iteration count, doubling s should scale intensity ~2x.
        let k = GridRelaxation::new(2);
        let t = 32;
        let m_small = 52; // s = 4
        let m_big = 52 * 4; // s ≈ 8
        let r1 = k.run(t, m_small, 3).unwrap().intensity();
        let r2 = k.run(t, m_big, 3).unwrap().intensity();
        let ratio = r2 / r1;
        assert!((1.5..3.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn one_dimensional_grid() {
        let k = GridRelaxation::new(1);
        let run = k.run(10, 30, 4).unwrap();
        // s = largest with (s+2) + s <= 30 => s = 14.
        assert_eq!(k.tile_side(30), 14);
        assert_eq!(run.execution.cost.comp_ops(), 10 * 3 * 14);
    }

    #[test]
    fn rejects_degenerate_parameters() {
        let k = GridRelaxation::new(2);
        assert!(matches!(
            k.run(0, 100, 0),
            Err(KernelError::BadParameters { .. })
        ));
        assert!(matches!(
            k.run(5, 5, 0),
            Err(KernelError::MemoryTooSmall { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "dimension must be 1..=4")]
    fn dimension_zero_panics() {
        let _ = GridRelaxation::new(0);
    }

    #[test]
    #[should_panic(expected = "dimension must be 1..=4")]
    fn dimension_five_panics() {
        let _ = GridRelaxation::new(5);
    }

    #[test]
    fn peak_memory_within_m() {
        let k = GridRelaxation::new(3);
        let run = k.run(4, 500, 5).unwrap();
        assert!(run.execution.peak_memory.get() <= 500);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(strides(&[4, 5, 6]), vec![30, 6, 1]);
        assert_eq!(strides(&[7]), vec![1]);
    }

    #[test]
    fn coordinate_iteration_is_row_major() {
        let mut seen = Vec::new();
        for_each_coord(&[2, 3], |c, idx| seen.push((c.to_vec(), idx)));
        assert_eq!(seen.len(), 6);
        assert_eq!(seen[0], (vec![0, 0], 0));
        assert_eq!(seen[1], (vec![0, 1], 1));
        assert_eq!(seen[3], (vec![1, 0], 3));
        assert_eq!(seen[5], (vec![1, 2], 5));
    }

    #[test]
    fn empty_dims_iterates_once() {
        // The d=1 tile-row loop iterates over a zero-dimensional shape.
        let mut count = 0;
        for_each_coord(&[], |_, _| count += 1);
        assert_eq!(count, 1);
    }
}
