//! # balance-kernels
//!
//! Instrumented, verified out-of-core implementations of every computation
//! analyzed in Kung (1985), *"Memory Requirements for Balanced Computer
//! Architectures"* — Section 3's whole summary table:
//!
//! | Kernel                        | Paper | `r(M)`        | Rebalance law      |
//! |-------------------------------|-------|---------------|--------------------|
//! | [`matmul::MatMul`]            | §3.1  | `Θ(√M)`       | `M_new = α²·M_old` |
//! | [`triangularization::Triangularization`] | §3.2 | `Θ(√M)` | `M_new = α²·M_old` |
//! | [`grid::GridRelaxation`] (d)  | §3.3  | `Θ(M^(1/d))`  | `M_new = α^d·M_old`|
//! | [`fft::Fft`]                  | §3.4  | `Θ(log₂M)`    | `M_new = M_old^α`  |
//! | [`sorting::ExternalSort`]     | §3.5  | `Θ(log₂M)`    | `M_new = M_old^α`  |
//! | [`matvec::MatVec`]            | §3.6  | `Θ(1)`        | impossible         |
//! | [`trisolve::TriSolve`]        | §3.6  | `Θ(1)`        | impossible         |
//!
//! Every kernel implements the [`traits::Kernel`] trait: it executes the
//! paper's decomposition scheme on the counting PE simulator from
//! `balance-machine`, **verifies its numeric output** against a plain
//! reference implementation, and reports measured `(C_comp, C_io)`.
//! [`sweep::intensity_sweep`] turns kernels into measured `r(M)` curves for
//! the experiments.
//!
//! ## Example: measure matmul's √M law
//!
//! ```
//! use balance_kernels::prelude::*;
//! use balance_core::fit::FittedLaw;
//!
//! let cfg = SweepConfig::pow2(32, 5, 9, 1); // N=32, M = 32..512
//! let result = intensity_sweep(&MatMul, &cfg)?;
//! match result.fit()?.best {
//!     FittedLaw::Power { exponent, .. } => assert!((exponent - 0.5).abs() < 0.2),
//!     other => panic!("expected a power law, got {other}"),
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod convolution;
pub mod error;
pub mod fft;
pub mod grid;
pub mod matmul;
pub mod matrix;
pub mod matvec;
pub mod multi_matvec;
pub mod profservice;
pub mod reference;
pub mod sorting;
pub mod sweep;
pub mod trace;
pub mod traits;
pub mod transpose;
pub mod triangularization;
pub mod trisolve;
pub mod verify;
pub mod workload;

pub use error::KernelError;
pub use traits::{all_kernels, extension_kernels, Kernel, KernelRun};
pub use verify::Verify;

/// Convenient glob import: `use balance_kernels::prelude::*;`.
pub mod prelude {
    pub use crate::convolution::Convolution;
    pub use crate::error::KernelError;
    pub use crate::fft::Fft;
    pub use crate::grid::GridRelaxation;
    pub use crate::matmul::MatMul;
    pub use crate::matvec::MatVec;
    pub use crate::multi_matvec::MultiMatVec;
    pub use crate::profservice::{
        build_store, key_for, registry, registry_kernel, BuildOutcome, ProfileService, Served,
        ServeSource,
    };
    pub use crate::sorting::ExternalSort;
    pub use crate::sweep::{
        capacity_sweep, capacity_sweep_par, engine_spec, hierarchy_capacity_sweep,
        hierarchy_capacity_sweep_par, hierarchy_sweep, hierarchy_sweep_par, intensity_sweep,
        intensity_sweep_par, par_map, robust_capacity_profile, DegradationStep, Engine,
        Provenance, SweepConfig, SweepResult, TrafficModel,
    };
    pub use crate::trace::AccessTrace;
    pub use crate::traits::{all_kernels, extension_kernels, Kernel, KernelRun};
    pub use crate::transpose::Transpose;
    pub use crate::triangularization::Triangularization;
    pub use crate::trisolve::TriSolve;
    pub use crate::verify::Verify;
}
