//! Seeded workload generators.
//!
//! Every kernel run is parameterized by `(N, M, seed)`; the same seed always
//! produces the same inputs, so measured cost profiles and verification
//! results are exactly reproducible.

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};

/// A random dense matrix with entries in `[-1, 1)`, row-major.
#[must_use]
pub fn random_matrix(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

/// A random diagonally dominant matrix: off-diagonal entries in `[-1, 1)`,
/// diagonal entries `n + 1` — safe for LU factorization without pivoting and
/// for triangular solves.
#[must_use]
pub fn random_diagonally_dominant(n: usize, seed: u64) -> Vec<f64> {
    let mut a = random_matrix(n, seed);
    for i in 0..n {
        a[i * n + i] = n as f64 + 1.0;
    }
    a
}

/// A random lower-triangular matrix with dominant diagonal (zeros above the
/// diagonal), row-major.
#[must_use]
pub fn random_lower_triangular(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut l = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..i {
            l[i * n + j] = rng.gen_range(-1.0..1.0);
        }
        l[i * n + i] = n as f64 + 1.0;
    }
    l
}

/// A random vector with entries in `[-1, 1)`.
#[must_use]
pub fn random_vector(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

/// Random sort keys (finite, in `[0, 1e6)`).
#[must_use]
pub fn random_keys(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0.0..1.0e6)).collect()
}

/// A random complex signal as interleaved `[re, im, re, im, …]` of length
/// `2n`.
#[must_use]
pub fn random_complex_signal(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..2 * n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

/// A random d-dimensional grid of `total` points with values in `[0, 1)`.
#[must_use]
pub fn random_grid(total: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..total).map(|_| rng.gen_range(0.0..1.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(random_matrix(8, 42), random_matrix(8, 42));
        assert_ne!(random_matrix(8, 42), random_matrix(8, 43));
        assert_eq!(random_keys(100, 7), random_keys(100, 7));
        assert_eq!(random_vector(10, 1), random_vector(10, 1));
    }

    #[test]
    fn diagonally_dominant_really_is() {
        let n = 16;
        let a = random_diagonally_dominant(n, 3);
        for i in 0..n {
            let off: f64 = (0..n).filter(|&j| j != i).map(|j| a[i * n + j].abs()).sum();
            assert!(a[i * n + i].abs() > off, "row {i} not dominant");
        }
    }

    #[test]
    fn lower_triangular_shape() {
        let n = 10;
        let l = random_lower_triangular(n, 5);
        for i in 0..n {
            for j in i + 1..n {
                assert_eq!(l[i * n + j], 0.0);
            }
            assert!(l[i * n + i] > n as f64);
        }
    }

    #[test]
    fn sizes_are_correct() {
        assert_eq!(random_matrix(5, 0).len(), 25);
        assert_eq!(random_vector(5, 0).len(), 5);
        assert_eq!(random_complex_signal(8, 0).len(), 16);
        assert_eq!(random_grid(27, 0).len(), 27);
        assert_eq!(random_keys(9, 0).len(), 9);
    }
}
