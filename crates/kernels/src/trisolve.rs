//! Streaming triangular solve (paper §3.6, I/O-bounded).
//!
//! Solving `L·x = b` by forward substitution performs `≈N²` operations
//! against `≈N²/2` words of matrix traffic — every entry of `L` is used
//! exactly once. Like matrix–vector multiplication, the intensity saturates
//! at a constant (≈2 ops/word), so the paper classifies it "impossible":
//! no local memory enlargement rebalances a PE for this computation.
//!
//! The blocked implementation processes `x` in blocks: for each row block,
//! previously computed `x` blocks are re-read once, the corresponding `L`
//! panel streams through, and the diagonal block is solved in memory.

use balance_core::{CostProfile, HierarchySpec, IntensityModel};
use balance_machine::{AnalyticProfile, ExternalStore, Pe};

use crate::error::KernelError;
use crate::matrix::MatrixHandle;
use crate::reference;
use crate::traits::{Kernel, KernelRun};
use crate::verify::{self, Verify};
use crate::workload;

/// Blocked streaming forward substitution. Problem size `n` = dimension.
#[derive(Debug, Clone, Copy, Default)]
pub struct TriSolve;

impl Kernel for TriSolve {
    fn access_trace(&self, n: usize) -> Option<crate::trace::AccessTrace> {
        (n > 0).then(|| crate::trace::trisolve(n))
    }

    /// Only `x` repeats: row `i` re-reads `x[0..i-1]` before writing `x[i]`.
    /// In row `i ≥ 1` the freshly solved `x[i-1]` recurs at distance `2i`
    /// (the `i-1` earlier `[L, x]` pairs plus `L[i][i-1]`, plus itself) and
    /// each older entry at `2i+1` (one extra: the row `i-1` tail it also
    /// spans) — a triangle of thin classes, one pair per row.
    fn analytic_profile(&self, n: usize) -> Option<AnalyticProfile> {
        if n == 0 {
            return None;
        }
        let n64 = n as u64;
        let mut p = AnalyticProfile::new();
        p.record_compulsory(n64 * (n64 + 1) / 2 + 2 * n64);
        for i in 1..n64 {
            p.record_class(2 * i, 1);
            p.record_class(2 * i + 1, i - 1);
        }
        Some(p)
    }

    fn name(&self) -> &'static str {
        "trisolve"
    }

    fn description(&self) -> &'static str {
        "forward substitution L·x = b; every L entry used once (paper §3.6, I/O-bounded)"
    }

    fn intensity_model(&self) -> IntensityModel {
        IntensityModel::constant(2.0)
    }

    fn analytic_cost(&self, n: usize, m: usize) -> CostProfile {
        let n64 = n as u64;
        let b = (m / 4).clamp(1, n.max(1)) as u64;
        // L lower triangle read once (n²/2), x prefix re-read per block
        // (n²/2b over all blocks... dominated), b and x once each.
        let io = n64 * n64 / 2 + n64 * n64 / (2 * b).max(1) + 2 * n64;
        CostProfile::new(n64 * n64, io)
    }

    fn min_memory(&self, _n: usize) -> usize {
        4
    }

    fn run_on(
        &self,
        n: usize,
        machine: &HierarchySpec,
        seed: u64,
        verify: Verify,
    ) -> Result<KernelRun, KernelError> {
        let m = machine.local_capacity_words();
        if n == 0 {
            return Err(KernelError::BadParameters {
                reason: "matrix size must be positive".into(),
            });
        }
        if m < self.min_memory(n) {
            return Err(KernelError::MemoryTooSmall {
                have: m,
                need: self.min_memory(n),
            });
        }
        // Memory split: acc block (b) + x prefix block (b) + L segment (b)
        // + b-vector block (b).
        let bs = (m / 4).clamp(1, n);

        let l_data = workload::random_lower_triangular(n, seed);
        let b_data = workload::random_vector(n, seed ^ 0xc2b2_ae35);
        let mut store = ExternalStore::new();
        let l = MatrixHandle::new(store.alloc_from(&l_data), n, n);
        let bvec = store.alloc_from(&b_data);
        let xvec = store.alloc(n);

        let mut pe = Pe::for_hierarchy(machine);
        let buf_acc = pe.alloc(bs)?; // partial sums, then solved x block
        let buf_x = pe.alloc(bs)?; // a previously computed x block
        let buf_l = pe.alloc(bs)?; // one row segment of L
        let buf_b = pe.alloc(bs)?; // the b block

        for k0 in (0..n).step_by(bs) {
            let kb = bs.min(n - k0);
            // acc = b block.
            pe.load(&store, bvec.at(k0, kb)?, buf_b, 0)?;
            pe.update(buf_acc, &[buf_b], |acc, srcs| {
                acc[..kb].copy_from_slice(&srcs[0][..kb]);
            })?;

            // Subtract contributions of previously solved x blocks.
            for j0 in (0..k0).step_by(bs) {
                let jb = bs.min(k0 - j0);
                pe.load(&store, xvec.at(j0, jb)?, buf_x, 0)?;
                for i in 0..kb {
                    pe.load(&store, l.row_segment(k0 + i, j0, jb)?, buf_l, 0)?;
                    pe.update(buf_acc, &[buf_l, buf_x], |acc, srcs| {
                        let (lv, xv) = (srcs[0], srcs[1]);
                        let mut s = 0.0;
                        for t in 0..jb {
                            s += lv[t] * xv[t];
                        }
                        acc[i] -= s;
                    })?;
                    pe.count_ops(2 * jb as u64 + 1);
                }
            }

            // Solve the diagonal block in memory: stream its L rows.
            for i in 0..kb {
                pe.load(&store, l.row_segment(k0 + i, k0, i + 1)?, buf_l, 0)?;
                pe.update(buf_acc, &[buf_l], |acc, srcs| {
                    let lv = srcs[0];
                    let mut s = acc[i];
                    for t in 0..i {
                        s -= lv[t] * acc[t];
                    }
                    acc[i] = s / lv[i];
                })?;
                pe.count_ops(2 * i as u64 + 1);
            }
            pe.store(&mut store, buf_acc, 0, xvec.at(k0, kb)?)?;
        }

        match verify {
            Verify::Full => {
                let want = reference::trisolve(&l_data, &b_data, n);
                let got = store.slice(xvec);
                let err = reference::max_abs_diff(&want, got);
                let tol = 1e-10 * (n as f64);
                if err > tol {
                    return Err(KernelError::VerificationFailed {
                        what: "trisolve",
                        max_error: err,
                        tolerance: tol,
                    });
                }
            }
            // A triangular solve has a natural O(n²) deterministic check:
            // the residual L·x̂ − b.
            Verify::Freivalds { .. } => {
                verify::trisolve_residual(&l_data, store.slice(xvec), &b_data, n)?;
            }
            Verify::None => {}
        }

        Ok(KernelRun {
            n,
            m,
            execution: pe.execution(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verifies_across_memories() {
        for m in [4, 16, 100, 1000] {
            let run = TriSolve.run(32, m, 7).unwrap();
            assert!(run.execution.cost.comp_ops() > 0, "m={m}");
        }
    }

    #[test]
    fn intensity_saturates() {
        let n = 64;
        let r_small = TriSolve.run(n, 16, 1).unwrap().intensity();
        let r_big = TriSolve.run(n, 8192, 1).unwrap().intensity();
        assert!(r_big <= 2.5, "r_big = {r_big}");
        assert!(r_big / r_small < 2.5, "small {r_small}, big {r_big}");
    }

    #[test]
    fn io_is_at_least_half_n_squared() {
        let n = 40;
        let run = TriSolve.run(n, 10_000, 2).unwrap();
        assert!(run.execution.cost.io_words() >= (n * n / 2) as u64);
    }

    #[test]
    fn io_bounded_flag_set() {
        assert!(TriSolve.io_bounded());
    }

    #[test]
    fn block_size_one_works() {
        let run = TriSolve.run(16, 4, 3).unwrap();
        assert_eq!(run.n, 16);
    }

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(TriSolve.run(0, 100, 0).is_err());
        assert!(TriSolve.run(8, 3, 0).is_err());
    }

    #[test]
    fn peak_memory_within_m() {
        let run = TriSolve.run(32, 64, 4).unwrap();
        assert!(run.execution.peak_memory.get() <= 64);
    }
}
