//! Blocked matrix transpose — an extension kernel.
//!
//! Transpose performs no arithmetic at all: every word is read once and
//! written once, giving the most extreme I/O-bounded profile in the suite
//! (intensity ½ when each element move is charged as one "operation" — the
//! bookkeeping currency for data-rearrangement computations, as comparisons
//! are for sorting). No memory size changes it, making transpose a clean
//! negative control for the rebalancing pipeline.
//!
//! The blocked algorithm still *needs* its `b × b` tile to avoid strided
//! writes — memory buys transfer regularity, just never balance.

use balance_core::{CostProfile, HierarchySpec, IntensityModel};
use balance_machine::{AnalyticProfile, ExternalStore, Pe};

use crate::error::KernelError;
use crate::matrix::{load_block, MatrixHandle};
use crate::traits::{Kernel, KernelRun};
use crate::verify::Verify;
use crate::workload;

/// Blocked out-of-core transpose. Problem size `n` = matrix dimension.
#[derive(Debug, Clone, Copy, Default)]
pub struct Transpose;

impl Kernel for Transpose {
    fn access_trace(&self, n: usize) -> Option<crate::trace::AccessTrace> {
        (n > 0).then(|| crate::trace::transpose(n))
    }

    fn analytic_profile(&self, n: usize) -> Option<AnalyticProfile> {
        // Every element of A is read once and every element of B written
        // once — no address repeats, so the histogram is pure compulsory
        // traffic. This generalizes the closed-form one-touch profile
        // `ParTranspose` has carried since PR 5.
        let n64 = n as u64;
        (n > 0).then(|| AnalyticProfile::one_touch(2 * n64 * n64))
    }

    fn name(&self) -> &'static str {
        "transpose"
    }

    fn description(&self) -> &'static str {
        "blocked N×N transpose; pure data movement (extension: the extreme I/O-bounded case)"
    }

    fn intensity_model(&self) -> IntensityModel {
        IntensityModel::constant(0.5)
    }

    fn analytic_cost(&self, n: usize, _m: usize) -> CostProfile {
        let n64 = n as u64;
        CostProfile::new(n64 * n64, 2 * n64 * n64)
    }

    fn min_memory(&self, _n: usize) -> usize {
        1
    }

    fn run_on(
        &self,
        n: usize,
        machine: &HierarchySpec,
        seed: u64,
        verify: Verify,
    ) -> Result<KernelRun, KernelError> {
        // No cheap randomized check exists: verify fully under any policy.
        let _ = verify;
        let m = machine.local_capacity_words();
        if n == 0 {
            return Err(KernelError::BadParameters {
                reason: "matrix size must be positive".into(),
            });
        }
        if m < self.min_memory(n) {
            return Err(KernelError::MemoryTooSmall {
                have: m,
                need: self.min_memory(n),
            });
        }
        // Integer isqrt: f64 rounding above 2⁵³ must not inflate b².
        let b = m.isqrt().clamp(1, n);

        let a_data = workload::random_matrix(n, seed);
        let mut store = ExternalStore::new();
        let a = MatrixHandle::new(store.alloc_from(&a_data), n, n);
        let t = MatrixHandle::new(store.alloc(n * n), n, n);

        let mut pe = Pe::for_hierarchy(machine);
        let tile = pe.alloc(b * b)?;

        for i0 in (0..n).step_by(b) {
            let ib = b.min(n - i0);
            for j0 in (0..n).step_by(b) {
                let jb = b.min(n - j0);
                load_block(&mut pe, &store, &a, i0, j0, ib, jb, tile)?;
                // Transpose the tile in place (counted as one move op per
                // element) and write it to the mirrored position.
                let ops = {
                    let buf = pe.buf_mut(tile)?;
                    let mut scratch = vec![0.0; ib * jb];
                    for r in 0..ib {
                        for c in 0..jb {
                            scratch[c * ib + r] = buf[r * jb + c];
                        }
                    }
                    buf[..ib * jb].copy_from_slice(&scratch);
                    (ib * jb) as u64
                };
                pe.count_ops(ops);
                crate::matrix::store_block(&mut pe, &mut store, &t, j0, i0, jb, ib, tile)?;
            }
        }

        // Verify.
        let got = t.snapshot(&store);
        for i in 0..n {
            for j in 0..n {
                if got[j * n + i] != a_data[i * n + j] {
                    return Err(KernelError::VerificationFailed {
                        what: "transpose",
                        max_error: (got[j * n + i] - a_data[i * n + j]).abs(),
                        tolerance: 0.0,
                    });
                }
            }
        }

        Ok(KernelRun {
            n,
            m,
            execution: pe.execution(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transposes_correctly_at_all_tile_sizes() {
        for m in [1usize, 4, 16, 100, 1024] {
            let run = Transpose.run(20, m, 3).unwrap();
            assert_eq!(run.execution.cost.comp_ops(), 400);
        }
    }

    #[test]
    fn io_is_exactly_two_passes() {
        let n = 24;
        let run = Transpose.run(n, 64, 1).unwrap();
        assert_eq!(run.execution.cost.io_words(), 2 * (n * n) as u64);
    }

    #[test]
    fn intensity_is_exactly_half_regardless_of_memory() {
        for m in [4usize, 64, 4096] {
            let run = Transpose.run(32, m, 2).unwrap();
            assert_eq!(run.intensity(), 0.5, "m = {m}");
        }
    }

    #[test]
    fn io_bounded_flag() {
        assert!(Transpose.io_bounded());
    }

    #[test]
    fn single_word_memory_still_works() {
        let run = Transpose.run(8, 1, 4).unwrap();
        assert_eq!(run.execution.cost.io_words(), 128);
    }

    #[test]
    fn rejects_zero_size() {
        assert!(Transpose.run(0, 16, 0).is_err());
    }
}
