#!/usr/bin/env bash
# Bench-smoke: run every criterion-shim bench target at reduced iterations
# (BENCH_SMOKE=1 → ≤ 3 samples × ≤ 3 iters per bench) plus the E23
# billion-address experiment (whose wall-clocks and sampled-error use the
# same "name": ns line protocol), and assemble the results into
# BENCH_<n>.json at the repo root, seeding the perf trajectory tracked
# across PRs.
#
# Usage: scripts/bench_smoke.sh [output.json]   (default: BENCH_10.json)
#
# PR 7 added the checkpoint_overhead/* tier: the resumable replay with
# checkpoints every 2^24 addresses (the production default) must stay
# within ~5% of the uncheckpointed replay, with the every-2^20 tier
# showing the amortized cost of real image writes (the tiers now share
# one warm-up pass, so run order no longer skews the comparison).
#
# PR 8 added the analytic tier: capacity_sweep_matmul_n96/engine_analytic
# (the closed-form histogram, zero replay) and the headline
# analytic_vs_stackdist_speedup ratio, which must stay >= 100x.
#
# PR 9 adds the device-traffic tiers: line_granular_sweep/* (the 16-point
# matmul sweep under the 8-word-line dirty-write-back model, one-pass
# vs tagged replay vs the word baseline) and the headline
# blocked_vs_naive_line_win ratio — how much more blocked matmul beats
# naive at 8-word lines than at word granularity (> 1, ~8.7x measured).
#
# PR 10 adds the profile-store tiers: profstore/serve_query_warm (one
# warm what-if query through the real `balance serve` session) and the
# headlines store_query_throughput (>= 1e5 queries/s acceptance bar)
# and store_build_registry (full 11-kernel registry x {16,32} grid into
# a fresh crash-safe store, every image checksummed and atomically
# published).
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_10.json}"
# Absolute path: cargo bench runs each target with cwd = its package dir.
jsonl="$(pwd)/target/bench_smoke.jsonl"
rm -f "$jsonl"

BENCH_SMOKE=1 BENCH_JSON="$jsonl" cargo bench -p balance-bench

# E23 at the large tier streams a 1.03e9-address trace through the
# segmented and sampled engines and appends
# bigtrace/{segmented,sampled}_wall_ns and the sampled
# max-relative-error (ppm) to the same jsonl file.
cargo build --release -p balance-bench
BENCH_JSON="$jsonl" ./target/release/repro --scale large bigtrace

# Each shim line is one JSON object member ("name": ns); wrap into an object.
{
  echo '{'
  sed 's/^/  /; $!s/$/,/' "$jsonl"
  echo '}'
} > "$out"

echo "wrote $out ($(grep -c ':' "$out") benches)"
