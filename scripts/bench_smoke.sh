#!/usr/bin/env bash
# Bench-smoke: run every criterion-shim bench target at reduced iterations
# (BENCH_SMOKE=1 → ≤ 3 samples × ≤ 3 iters per bench) and assemble the
# median-ns-per-bench results into BENCH_<n>.json at the repo root, seeding
# the perf trajectory tracked across PRs.
#
# Usage: scripts/bench_smoke.sh [output.json]   (default: BENCH_5.json)
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_5.json}"
# Absolute path: cargo bench runs each target with cwd = its package dir.
jsonl="$(pwd)/target/bench_smoke.jsonl"
rm -f "$jsonl"

BENCH_SMOKE=1 BENCH_JSON="$jsonl" cargo bench -p balance-bench

# Each shim line is one JSON object member ("name": ns); wrap into an object.
{
  echo '{'
  sed 's/^/  /; $!s/$/,/' "$jsonl"
  echo '}'
} > "$out"

echo "wrote $out ($(grep -c ':' "$out") benches)"
